//! `astra-binlog`: the binary columnar on-disk format.
//!
//! At the 36-rack scale the text formats are the pipeline wall clock —
//! serialize + parse + fsck of ~1 GB of syslog-shaped text dwarfs the
//! actual analysis. This module adds a compact binary peer for each of
//! the four log formats, sharing the varint/zigzag/delta codecs in
//! [`astra_util::codec`] with the binary checkpoint encoding.
//!
//! ## Container layout
//!
//! Every `astra-binlog` file is a 24-byte header followed by zero or
//! more CRC-framed column blocks:
//!
//! ```text
//! header:  magic[8] = "ASTRBLG\0"
//!          version  u16 LE (currently 1)
//!          kind     u8     (1=ce 2=het 3=inventory 4=sensor 5=checkpoint)
//!          flags    u8     (0)
//!          count    u64 LE (total records; exact pre-sizing on read)
//!          crc      u32 LE (crc32 of the 20 bytes above)
//! block:   len      u32 LE (payload length in bytes)
//!          payload  len bytes
//!          crc      u32 LE (crc32 of payload)
//! ```
//!
//! Log-kind payloads (kinds 1–4) start with a varint record count, so
//! `fsck` can verify a file with a CRC sweep plus a one-varint peek per
//! block — no column decode, no text reparse. Blocks hold at most
//! [`BLOCK_RECORDS`] records; a flipped bit damages (and quarantines)
//! one block, not the file.
//!
//! ## Column encodings
//!
//! Within a block, each field is a column: timestamps are delta+zigzag
//! varints, node ids are dictionary-coded (sorted distinct ids as varint
//! deltas, then per-record varint indices), slot/rank/kind/severity are
//! byte columns, numeric fields are fixed-width little-endian arrays,
//! and `Option` columns are a presence bitmap followed by the present
//! values. Sensor values are stored as raw `f64` bit patterns, so the
//! parsed value round-trips exactly.
//!
//! ## Corruption handling
//!
//! The binary read path speaks the same [`Quarantine`] taxonomy as the
//! text readers, with binary-specific reasons: [`QuarantineReason::BadMagic`],
//! [`QuarantineReason::BadVersion`], [`QuarantineReason::BlockCrc`], and
//! [`QuarantineReason::TruncatedBlock`]. Sample positions are byte
//! offsets rather than line numbers. Strict ingest aborts on the first
//! quarantined unit; lenient ingest skips damaged blocks and checks the
//! `--max-bad-frac` budget at EOF, where a damaged block counts as one
//! quarantined unit against the successfully decoded records.

use std::io::{self, Read, Write};
use std::path::Path;

use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId, SensorId};
use astra_util::codec::{
    read_deltas, read_presence, read_u16_le, read_u32_le, read_u64_le, read_uvarint, write_deltas,
    write_presence, write_u16_le, write_u32_le, write_u64_le, write_uvarint,
};
use astra_util::{crc32, CalDate, Minute};

use crate::ce::CeRecord;
use crate::het::{HetKind, HetRecord, HetSeverity};
use crate::inventory::{Component, ReplacementRecord};
use crate::io::{parse_file_streaming, publish_quarantine, IngestChunk, IngestError, ParsedLog};
use crate::quarantine::{IngestOptions, LineFormat, Quarantine, QuarantineReason, RetryPolicy};
use crate::sensor::SensorRecord;

/// Leading magic bytes of every `astra-binlog` file.
pub const MAGIC: [u8; 8] = *b"ASTRBLG\0";

/// Current container version.
pub const VERSION: u16 = 1;

/// Header length in bytes: magic + version + kind + flags + count + crc.
pub const HEADER_LEN: usize = 24;

/// Record-kind byte for `ce.log`.
pub const KIND_CE: u8 = 1;
/// Record-kind byte for `het.log`.
pub const KIND_HET: u8 = 2;
/// Record-kind byte for `inventory.log`.
pub const KIND_INVENTORY: u8 = 3;
/// Record-kind byte for `sensors.log`.
pub const KIND_SENSOR: u8 = 4;
/// Record-kind byte for binary stream checkpoints.
pub const KIND_CHECKPOINT: u8 = 5;

/// Maximum records per column block. Keeps per-block state small and
/// bounds the blast radius of a damaged block.
pub const BLOCK_RECORDS: usize = 65_536;

/// Largest credible block payload; a length field beyond this is treated
/// as corruption (the framing is lost) rather than allocated.
pub const MAX_BLOCK_BYTES: usize = 1 << 26;

/// On-disk format choice, as selected by `generate --format` and
/// `convert --to`. Readers never need this: every read path sniffs the
/// magic bytes ([`file_is_binlog`]) and dispatches per file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// The line-oriented text formats (the published-dataset shape).
    #[default]
    Text,
    /// The `astra-binlog` binary columnar format.
    Binary,
}

impl LogFormat {
    /// Parse a CLI value (`text` or `binary`).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s {
            "text" => Some(LogFormat::Text),
            "binary" => Some(LogFormat::Binary),
            _ => None,
        }
    }

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            LogFormat::Text => "text",
            LogFormat::Binary => "binary",
        }
    }
}

/// Binary-format descriptor for one record type: the container kind byte
/// plus the column block encoder/decoder. The binary peer of
/// [`LineFormat`] — plain function pointers, so it is `Copy`.
pub struct BinFormat<T> {
    /// Record-kind byte stored in the file header.
    pub kind: u8,
    /// Encode a batch of records (at most [`BLOCK_RECORDS`]) as one
    /// column block payload, starting with a varint record count.
    pub encode: fn(&[T], &mut Vec<u8>),
    /// Decode one block payload, appending records to `out`. Returns
    /// `None` if the payload is malformed or any value fails validation;
    /// the whole payload must be consumed.
    pub decode: fn(&[u8], &mut Vec<T>) -> Option<()>,
}

impl<T> Clone for BinFormat<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for BinFormat<T> {}

impl<T> std::fmt::Debug for BinFormat<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinFormat")
            .field("kind", &self.kind)
            .finish()
    }
}

/// Binary descriptor for `ce.log`.
pub const CE: BinFormat<CeRecord> = BinFormat {
    kind: KIND_CE,
    encode: encode_ce,
    decode: decode_ce,
};

/// Binary descriptor for `het.log`.
pub const HET: BinFormat<HetRecord> = BinFormat {
    kind: KIND_HET,
    encode: encode_het,
    decode: decode_het,
};

/// Binary descriptor for `inventory.log`.
pub const INVENTORY: BinFormat<ReplacementRecord> = BinFormat {
    kind: KIND_INVENTORY,
    encode: encode_inventory,
    decode: decode_inventory,
};

/// Binary descriptor for `sensors.log`.
pub const SENSOR: BinFormat<SensorRecord> = BinFormat {
    kind: KIND_SENSOR,
    encode: encode_sensor,
    decode: decode_sensor,
};

// ---------------------------------------------------------------------
// Column helpers
// ---------------------------------------------------------------------

/// Dictionary-code a node-id column: sorted distinct ids as varint
/// deltas, then one varint dictionary index per record.
fn write_nodes(out: &mut Vec<u8>, nodes: &[u32]) {
    let mut dict: Vec<u32> = nodes.to_vec();
    dict.sort_unstable();
    dict.dedup();
    write_uvarint(out, dict.len() as u64);
    let mut prev = 0u64;
    for &d in &dict {
        write_uvarint(out, u64::from(d) - prev);
        prev = u64::from(d);
    }
    for &v in nodes {
        let idx = dict.partition_point(|&d| d < v);
        write_uvarint(out, idx as u64);
    }
}

/// Inverse of [`write_nodes`] for `n` records.
fn read_nodes(buf: &[u8], pos: &mut usize, n: usize) -> Option<Vec<u32>> {
    let dlen = read_uvarint(buf, pos)? as usize;
    if dlen > n {
        return None; // a dictionary cannot outgrow the column
    }
    let mut dict: Vec<u32> = Vec::with_capacity(dlen);
    let mut prev = 0u64;
    for i in 0..dlen {
        let d = read_uvarint(buf, pos)?;
        if i > 0 && d == 0 {
            return None; // entries must be strictly increasing
        }
        prev = prev.checked_add(d)?;
        dict.push(u32::try_from(prev).ok()?);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = read_uvarint(buf, pos)? as usize;
        out.push(*dict.get(idx)?);
    }
    Some(out)
}

fn take_bytes<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let b = buf.get(*pos..*pos + n)?;
    *pos += n;
    Some(b)
}

fn read_u16s(buf: &[u8], pos: &mut usize, n: usize) -> Option<Vec<u16>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_u16_le(buf, pos)?);
    }
    Some(out)
}

fn read_u32s(buf: &[u8], pos: &mut usize, n: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_u32_le(buf, pos)?);
    }
    Some(out)
}

fn read_u64s(buf: &[u8], pos: &mut usize, n: usize) -> Option<Vec<u64>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_u64_le(buf, pos)?);
    }
    Some(out)
}

/// Read the varint record count that leads every log-kind payload,
/// bounded by [`BLOCK_RECORDS`].
fn read_count(buf: &[u8], pos: &mut usize) -> Option<usize> {
    let n = read_uvarint(buf, pos)?;
    (n <= BLOCK_RECORDS as u64).then_some(n as usize)
}

// ---------------------------------------------------------------------
// Per-record-type column blocks
// ---------------------------------------------------------------------

fn encode_ce(records: &[CeRecord], out: &mut Vec<u8>) {
    write_uvarint(out, records.len() as u64);
    let times: Vec<i64> = records.iter().map(|r| r.time.0).collect();
    write_deltas(out, 0, &times);
    let nodes: Vec<u32> = records.iter().map(|r| r.node.0).collect();
    write_nodes(out, &nodes);
    for r in records {
        out.push(r.slot.index() as u8);
    }
    for r in records {
        out.push(r.rank.0);
    }
    for r in records {
        write_u16_le(out, r.bank);
    }
    for r in records {
        write_u16_le(out, r.col);
    }
    for r in records {
        write_u16_le(out, r.bit_pos);
    }
    let rows: Vec<Option<u32>> = records.iter().map(|r| r.row).collect();
    write_presence(out, &rows);
    for row in rows.iter().flatten() {
        write_u32_le(out, *row);
    }
    for r in records {
        write_u64_le(out, r.addr.0);
    }
    for r in records {
        write_u32_le(out, r.syndrome);
    }
}

fn decode_ce(buf: &[u8], out: &mut Vec<CeRecord>) -> Option<()> {
    let mut pos = 0usize;
    let n = read_count(buf, &mut pos)?;
    let times = read_deltas(buf, &mut pos, 0, n)?;
    let nodes = read_nodes(buf, &mut pos, n)?;
    let slots = take_bytes(buf, &mut pos, n)?;
    let ranks = take_bytes(buf, &mut pos, n)?;
    let banks = read_u16s(buf, &mut pos, n)?;
    let cols = read_u16s(buf, &mut pos, n)?;
    let bits = read_u16s(buf, &mut pos, n)?;
    let row_present = read_presence(buf, &mut pos, n)?;
    let mut rows: Vec<Option<u32>> = Vec::with_capacity(n);
    for &present in &row_present {
        rows.push(if present {
            Some(read_u32_le(buf, &mut pos)?)
        } else {
            None
        });
    }
    let addrs = read_u64s(buf, &mut pos, n)?;
    let synds = read_u32s(buf, &mut pos, n)?;
    for i in 0..n {
        let slot = DimmSlot::from_index(slots[i])?;
        if ranks[i] > 1 {
            return None;
        }
        out.push(CeRecord {
            time: Minute(times[i]),
            node: NodeId(nodes[i]),
            socket: slot.socket(),
            slot,
            rank: RankId(ranks[i]),
            bank: banks[i],
            row: rows[i],
            col: cols[i],
            bit_pos: bits[i],
            addr: PhysAddr(addrs[i]),
            syndrome: synds[i],
        });
    }
    (pos == buf.len()).then_some(())
}

fn het_severity_index(s: HetSeverity) -> u8 {
    match s {
        HetSeverity::Warning => 0,
        HetSeverity::Critical => 1,
        HetSeverity::NonRecoverable => 2,
    }
}

fn het_severity_from_index(i: u8) -> Option<HetSeverity> {
    match i {
        0 => Some(HetSeverity::Warning),
        1 => Some(HetSeverity::Critical),
        2 => Some(HetSeverity::NonRecoverable),
        _ => None,
    }
}

fn encode_het(records: &[HetRecord], out: &mut Vec<u8>) {
    write_uvarint(out, records.len() as u64);
    let times: Vec<i64> = records.iter().map(|r| r.time.0).collect();
    write_deltas(out, 0, &times);
    let nodes: Vec<u32> = records.iter().map(|r| r.node.0).collect();
    write_nodes(out, &nodes);
    for r in records {
        let kind = HetKind::ALL
            .iter()
            .position(|k| *k == r.kind)
            .expect("HetKind::ALL is exhaustive");
        out.push(kind as u8);
    }
    for r in records {
        out.push(het_severity_index(r.severity));
    }
    let slots: Vec<Option<u8>> = records
        .iter()
        .map(|r| r.slot.map(|s| s.index() as u8))
        .collect();
    write_presence(out, &slots);
    for slot in slots.iter().flatten() {
        out.push(*slot);
    }
}

fn decode_het(buf: &[u8], out: &mut Vec<HetRecord>) -> Option<()> {
    let mut pos = 0usize;
    let n = read_count(buf, &mut pos)?;
    let times = read_deltas(buf, &mut pos, 0, n)?;
    let nodes = read_nodes(buf, &mut pos, n)?;
    let kinds = take_bytes(buf, &mut pos, n)?;
    let sevs = take_bytes(buf, &mut pos, n)?;
    let slot_present = read_presence(buf, &mut pos, n)?;
    let mut slots: Vec<Option<DimmSlot>> = Vec::with_capacity(n);
    for &present in &slot_present {
        slots.push(if present {
            let idx = *take_bytes(buf, &mut pos, 1)?.first()?;
            Some(DimmSlot::from_index(idx)?)
        } else {
            None
        });
    }
    for i in 0..n {
        out.push(HetRecord {
            time: Minute(times[i]),
            node: NodeId(nodes[i]),
            kind: *HetKind::ALL.get(usize::from(kinds[i]))?,
            severity: het_severity_from_index(sevs[i])?,
            slot: slots[i],
        });
    }
    (pos == buf.len()).then_some(())
}

fn encode_inventory(records: &[ReplacementRecord], out: &mut Vec<u8>) {
    write_uvarint(out, records.len() as u64);
    let days: Vec<i64> = records.iter().map(|r| r.date.day_index()).collect();
    write_deltas(out, 0, &days);
    let nodes: Vec<u32> = records.iter().map(|r| r.node.0).collect();
    write_nodes(out, &nodes);
    for r in records {
        let (tag, arg) = match r.component {
            Component::Processor(socket) => (0u8, socket.0),
            Component::Motherboard => (1, 0),
            Component::Dimm(slot) => (2, slot.index() as u8),
        };
        out.push(tag);
        out.push(arg);
    }
}

fn decode_inventory(buf: &[u8], out: &mut Vec<ReplacementRecord>) -> Option<()> {
    let mut pos = 0usize;
    let n = read_count(buf, &mut pos)?;
    let days = read_deltas(buf, &mut pos, 0, n)?;
    let nodes = read_nodes(buf, &mut pos, n)?;
    for i in 0..n {
        let pair = take_bytes(buf, &mut pos, 2)?;
        let component = match (pair[0], pair[1]) {
            (0, socket @ 0..=1) => Component::Processor(astra_topology::SocketId(socket)),
            (1, 0) => Component::Motherboard,
            (2, idx) => Component::Dimm(DimmSlot::from_index(idx)?),
            _ => return None,
        };
        out.push(ReplacementRecord {
            date: CalDate::from_day_index(days[i]),
            node: NodeId(nodes[i]),
            component,
        });
    }
    (pos == buf.len()).then_some(())
}

fn encode_sensor(records: &[SensorRecord], out: &mut Vec<u8>) {
    write_uvarint(out, records.len() as u64);
    let times: Vec<i64> = records.iter().map(|r| r.time.0).collect();
    write_deltas(out, 0, &times);
    let nodes: Vec<u32> = records.iter().map(|r| r.node.0).collect();
    write_nodes(out, &nodes);
    for r in records {
        out.push(r.sensor.index() as u8);
    }
    let values: Vec<Option<f64>> = records.iter().map(|r| r.value).collect();
    write_presence(out, &values);
    for v in values.iter().flatten() {
        write_u64_le(out, quantize_tenths(*v).to_bits());
    }
}

/// Quantize to one decimal digit exactly as the text format does: the
/// stored value must equal `format!("value={v:.1}")` parsed back, so the
/// two formats decode bit-identical records whatever precision the writer
/// held in memory.
///
/// The arithmetic fast path is safe when the scaled value sits clearly
/// away from a rounding boundary: exact decimal ties (`v * 10` a real
/// half-integer) would need `v = odd/20`, which no binary f64 can hold,
/// and for `|v*10| < 1e9` the product's rounding error (≤ half an ulp,
/// under 1.2e-7) cannot carry it across a boundary it is more than 1e-6
/// from. Everything else — near-ties, huge values, non-finite — takes the
/// formatter, the authority being matched.
fn quantize_tenths(v: f64) -> f64 {
    let p = v * 10.0;
    let r = p.round();
    if p.abs() < 1e9 && 0.5 - (p - r).abs() > 1e-6 {
        r / 10.0
    } else {
        format!("{v:.1}").parse().unwrap_or(v)
    }
}

fn decode_sensor(buf: &[u8], out: &mut Vec<SensorRecord>) -> Option<()> {
    let mut pos = 0usize;
    let n = read_count(buf, &mut pos)?;
    let times = read_deltas(buf, &mut pos, 0, n)?;
    let nodes = read_nodes(buf, &mut pos, n)?;
    let sensors = take_bytes(buf, &mut pos, n)?;
    let present = read_presence(buf, &mut pos, n)?;
    let mut values: Vec<Option<f64>> = Vec::with_capacity(n);
    for &p in &present {
        values.push(if p {
            Some(f64::from_bits(read_u64_le(buf, &mut pos)?))
        } else {
            None
        });
    }
    for i in 0..n {
        out.push(SensorRecord {
            time: Minute(times[i]),
            node: NodeId(nodes[i]),
            sensor: SensorId::from_index(sensors[i])?,
            value: values[i],
        });
    }
    (pos == buf.len()).then_some(())
}

// ---------------------------------------------------------------------
// Container write
// ---------------------------------------------------------------------

/// Build the 24-byte file header for `kind` declaring `count` records.
pub fn header_bytes(kind: u8, count: u64) -> [u8; HEADER_LEN] {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&MAGIC);
    write_u16_le(&mut out, VERSION);
    out.push(kind);
    out.push(0); // flags
    write_u64_le(&mut out, count);
    let crc = crc32(&out);
    write_u32_le(&mut out, crc);
    out.try_into().expect("header is exactly HEADER_LEN bytes")
}

/// Append one CRC-framed block (`len`, payload, `crc32(payload)`).
pub fn append_block(out: &mut Vec<u8>, payload: &[u8]) {
    write_u32_le(out, payload.len() as u32);
    out.extend_from_slice(payload);
    write_u32_le(out, crc32(payload));
}

/// Write `records` to `sink` as a complete `astra-binlog` file. Returns
/// the record count.
pub fn write_records<W, T>(sink: &mut W, bin: BinFormat<T>, records: &[T]) -> io::Result<u64>
where
    W: Write,
{
    sink.write_all(&header_bytes(bin.kind, records.len() as u64))?;
    let mut payload = Vec::new();
    for chunk in records.chunks(BLOCK_RECORDS) {
        payload.clear();
        (bin.encode)(chunk, &mut payload);
        sink.write_all(&(payload.len() as u32).to_le_bytes())?;
        sink.write_all(&payload)?;
        sink.write_all(&crc32(&payload).to_le_bytes())?;
    }
    Ok(records.len() as u64)
}

// ---------------------------------------------------------------------
// Container read
// ---------------------------------------------------------------------

/// Whether a byte prefix carries the `astra-binlog` magic.
pub fn sniff_is_binlog(first: &[u8]) -> bool {
    first.len() >= MAGIC.len() && first[..MAGIC.len()] == MAGIC
}

/// Whether the file at `path` starts with the `astra-binlog` magic.
/// Short and empty files are not binlogs (they take the text path).
pub fn file_is_binlog(path: &Path) -> io::Result<bool> {
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 8];
    let mut filled = 0usize;
    while filled < head.len() {
        match f.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(sniff_is_binlog(&head[..filled]))
}

/// Validate a (possibly short) header read against `expected_kind`.
/// Returns the declared record count.
fn validate_header(hdr: &[u8], expected_kind: u8) -> Result<u64, (QuarantineReason, String)> {
    if !sniff_is_binlog(hdr) {
        return Err((
            QuarantineReason::BadMagic,
            format!("not an astra-binlog header ({} bytes)", hdr.len()),
        ));
    }
    if hdr.len() < HEADER_LEN {
        return Err((
            QuarantineReason::BadVersion,
            format!("header cut short at {} of {HEADER_LEN} bytes", hdr.len()),
        ));
    }
    let mut pos = MAGIC.len();
    let version = read_u16_le(hdr, &mut pos).expect("length checked");
    let kind = hdr[pos];
    pos += 2; // kind + flags
    let count = read_u64_le(hdr, &mut pos).expect("length checked");
    let stored_crc = read_u32_le(hdr, &mut pos).expect("length checked");
    let actual_crc = crc32(&hdr[..HEADER_LEN - 4]);
    if actual_crc != stored_crc {
        return Err((
            QuarantineReason::BadVersion,
            format!("header crc mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"),
        ));
    }
    if version != VERSION {
        return Err((
            QuarantineReason::BadVersion,
            format!("unsupported version {version} (expected {VERSION})"),
        ));
    }
    if kind != expected_kind {
        return Err((
            QuarantineReason::BadVersion,
            format!("record kind {kind} (expected {expected_kind})"),
        ));
    }
    Ok(count)
}

/// Streaming block reader over any `Read`: the binary peer of
/// [`crate::io::ChunkReader`]. Each [`BinReader::next_chunk`] yields the
/// records of one column block (with any corruption quarantined), until
/// the reader is exhausted.
///
/// A block whose CRC trailer fails is skipped — the framing is intact,
/// so subsequent blocks still parse. Truncation or an implausible length
/// field loses the framing and ends the file.
pub struct BinReader<R, T> {
    reader: R,
    bin: BinFormat<T>,
    retry: RetryPolicy,
    header_done: bool,
    declared: u64,
    decoded: u64,
    offset: u64,
    blocks: u64,
    dirty: bool,
    done: bool,
    /// Tail mode: the file may still be growing, so a frame cut short at
    /// EOF is an append in progress, not corruption. The partial frame's
    /// bytes wait in `stash` and the next call resumes from the same
    /// logical offset once the writer has caught up.
    tail: bool,
    /// Bytes read from the file but not yet consumed into a complete
    /// frame (tail mode only; always empty otherwise).
    stash: Vec<u8>,
}

impl<R, T> BinReader<R, T>
where
    R: Read,
{
    /// Wrap `reader`, decoding blocks per `bin`, with the default
    /// [`RetryPolicy`].
    pub fn new(reader: R, bin: BinFormat<T>) -> Self {
        BinReader {
            reader,
            bin,
            retry: RetryPolicy::default(),
            header_done: false,
            declared: 0,
            decoded: 0,
            offset: 0,
            blocks: 0,
            dirty: false,
            done: false,
            tail: false,
            stash: Vec::new(),
        }
    }

    /// Replace the transient-I/O retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable or disable tail (growing-file) mode.
    pub fn with_tail(mut self, tail: bool) -> Self {
        self.set_tail(tail);
        self
    }

    /// Switch tail mode at runtime. Note the header's declared record
    /// count is only cross-checked against what decoded in non-tail mode
    /// — a growing file legitimately holds fewer records than its header
    /// promises until the writer finishes.
    pub fn set_tail(&mut self, tail: bool) {
        self.tail = tail;
    }

    /// Fill as much of `buf` as the reader allows (short only at EOF),
    /// applying the retry policy to transient errors.
    fn read_fill(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut filled = 0usize;
        while filled < buf.len() {
            let mut attempt = 0u32;
            let n = loop {
                match self.reader.read(&mut buf[filled..]) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        if attempt >= self.retry.max_retries {
                            return Err(e);
                        }
                        let backoff_ms = self.retry.backoff_base_ms << attempt;
                        attempt += 1;
                        astra_obs::global().counter("ingest.io_retries").add(1);
                        if backoff_ms > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                        }
                    }
                }
            };
            if n == 0 {
                break;
            }
            filled += n;
        }
        self.offset += filled as u64;
        Ok(filled)
    }

    /// Record count declared by the file header (0 until the header has
    /// been read) — the exact pre-sizing hint for readers.
    pub fn declared(&self) -> u64 {
        self.declared
    }

    /// Bytes consumed into frames so far (stashed bytes of a frame still
    /// being assembled in tail mode don't count yet).
    pub fn bytes_consumed(&self) -> usize {
        self.offset as usize - self.stash.len()
    }

    /// Blocks fully framed (read through their CRC trailer) so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks
    }

    /// Tail-mode buffered read: grow the stash to at least `need` bytes,
    /// returning whether it got there. Stashed bytes stay put until a
    /// whole frame is present, so a short read never loses position —
    /// the re-read from the last known-good offset happens for free.
    fn stash_fill(&mut self, need: usize) -> io::Result<bool> {
        if self.stash.len() >= need {
            return Ok(true);
        }
        let mut stash = std::mem::take(&mut self.stash);
        let at = stash.len();
        stash.resize(need, 0);
        match self.read_fill(&mut stash[at..]) {
            Ok(got) => {
                stash.truncate(at + got);
                let full = stash.len() >= need;
                self.stash = stash;
                Ok(full)
            }
            Err(e) => {
                stash.truncate(at);
                self.stash = stash;
                Err(e)
            }
        }
    }

    /// Decode the next block, or `None` once the file is exhausted.
    /// Damaged headers/blocks come back as chunks with empty records and
    /// a populated quarantine, mirroring the text reader's behaviour.
    pub fn next_chunk(&mut self) -> io::Result<Option<IngestChunk<T>>> {
        if self.done {
            return Ok(None);
        }
        if self.tail {
            return self.next_chunk_tail();
        }
        let mut quarantine = Quarantine::default();
        let empty = |q: Quarantine| IngestChunk {
            records: Vec::new(),
            quarantine: q,
        };
        if !self.stash.is_empty() {
            // Tail mode ended with a frame still incomplete: the file
            // really does stop mid-block.
            let block_off = self.offset - self.stash.len() as u64;
            quarantine.note(
                block_off,
                QuarantineReason::TruncatedBlock,
                format!("file ends inside a block ({} bytes)", self.stash.len()).as_bytes(),
            );
            self.stash.clear();
            self.dirty = true;
            self.done = true;
            return Ok(Some(empty(quarantine)));
        }
        if !self.header_done {
            let mut hdr = [0u8; HEADER_LEN];
            let n = self.read_fill(&mut hdr)?;
            match validate_header(&hdr[..n], self.bin.kind) {
                Ok(count) => {
                    self.declared = count;
                    self.header_done = true;
                }
                Err((reason, msg)) => {
                    quarantine.note(0, reason, msg.as_bytes());
                    self.dirty = true;
                    self.done = true;
                    return Ok(Some(empty(quarantine)));
                }
            }
        }
        let block_off = self.offset;
        let mut lenb = [0u8; 4];
        let n = self.read_fill(&mut lenb)?;
        if n == 0 {
            // Clean EOF on a block boundary: cross-check the header's
            // declared count against what actually decoded.
            self.done = true;
            if !self.dirty && self.decoded != self.declared {
                quarantine.note(
                    block_off,
                    QuarantineReason::TruncatedBlock,
                    format!(
                        "file ends after {} of {} declared records",
                        self.decoded, self.declared
                    )
                    .as_bytes(),
                );
                return Ok(Some(empty(quarantine)));
            }
            return Ok(None);
        }
        if n < 4 {
            quarantine.note(
                block_off,
                QuarantineReason::TruncatedBlock,
                format!("block length cut short at EOF ({n} of 4 bytes)").as_bytes(),
            );
            self.dirty = true;
            self.done = true;
            return Ok(Some(empty(quarantine)));
        }
        let len = u32::from_le_bytes(lenb) as usize;
        if len > MAX_BLOCK_BYTES {
            quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                format!("implausible block length {len}").as_bytes(),
            );
            self.dirty = true;
            self.done = true; // framing lost
            return Ok(Some(empty(quarantine)));
        }
        let mut payload = vec![0u8; len];
        let n = self.read_fill(&mut payload)?;
        if n < len {
            quarantine.note(
                block_off,
                QuarantineReason::TruncatedBlock,
                format!("block payload cut short at EOF ({n} of {len} bytes)").as_bytes(),
            );
            self.dirty = true;
            self.done = true;
            return Ok(Some(empty(quarantine)));
        }
        let mut crcb = [0u8; 4];
        let n = self.read_fill(&mut crcb)?;
        if n < 4 {
            quarantine.note(
                block_off,
                QuarantineReason::TruncatedBlock,
                format!("block crc trailer cut short at EOF ({n} of 4 bytes)").as_bytes(),
            );
            self.dirty = true;
            self.done = true;
            return Ok(Some(empty(quarantine)));
        }
        self.blocks += 1;
        let stored = u32::from_le_bytes(crcb);
        let actual = crc32(&payload);
        if actual != stored {
            quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                format!("block crc mismatch: stored {stored:08x}, computed {actual:08x}")
                    .as_bytes(),
            );
            self.dirty = true;
            return Ok(Some(empty(quarantine))); // framing intact: keep going
        }
        let mut records = Vec::new();
        if (self.bin.decode)(&payload, &mut records).is_none() {
            quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                format!("block payload fails to decode ({len} bytes)").as_bytes(),
            );
            self.dirty = true;
            return Ok(Some(empty(quarantine)));
        }
        self.decoded += records.len() as u64;
        Ok(Some(IngestChunk {
            records,
            quarantine,
        }))
    }

    /// Tail-mode [`BinReader::next_chunk`]: a frame cut short at EOF is
    /// held in the stash and retried on the next call instead of being
    /// quarantined as truncation — the writer may simply not have
    /// finished the append. `Ok(None)` means "dry for now", not end of
    /// file, and the declared-count cross-check is skipped (a growing
    /// file holds fewer records than its header promises until the
    /// writer is done).
    fn next_chunk_tail(&mut self) -> io::Result<Option<IngestChunk<T>>> {
        let mut quarantine = Quarantine::default();
        let empty = |q: Quarantine| IngestChunk {
            records: Vec::new(),
            quarantine: q,
        };
        if !self.header_done {
            if !self.stash_fill(HEADER_LEN)? {
                return Ok(None); // header still being written
            }
            match validate_header(&self.stash[..HEADER_LEN], self.bin.kind) {
                Ok(count) => {
                    self.declared = count;
                    self.header_done = true;
                    self.stash.drain(..HEADER_LEN);
                }
                Err((reason, msg)) => {
                    quarantine.note(0, reason, msg.as_bytes());
                    self.dirty = true;
                    self.done = true;
                    return Ok(Some(empty(quarantine)));
                }
            }
        }
        // First byte of the frame being assembled (stashed bytes were
        // read from the file but not yet consumed).
        let block_off = self.offset - self.stash.len() as u64;
        if !self.stash_fill(4)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.stash[..4].try_into().unwrap()) as usize;
        if len > MAX_BLOCK_BYTES {
            quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                format!("implausible block length {len}").as_bytes(),
            );
            self.dirty = true;
            self.done = true; // framing lost
            return Ok(Some(empty(quarantine)));
        }
        let frame = 4 + len + 4;
        if !self.stash_fill(frame)? {
            return Ok(None); // payload or crc trailer still being written
        }
        self.blocks += 1;
        let payload = &self.stash[4..4 + len];
        let stored = u32::from_le_bytes(self.stash[4 + len..frame].try_into().unwrap());
        let actual = crc32(payload);
        if actual != stored {
            quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                format!("block crc mismatch: stored {stored:08x}, computed {actual:08x}")
                    .as_bytes(),
            );
            self.dirty = true;
            self.stash.drain(..frame);
            return Ok(Some(empty(quarantine))); // framing intact: keep going
        }
        let mut records = Vec::new();
        let decoded_ok = (self.bin.decode)(payload, &mut records).is_some();
        self.stash.drain(..frame);
        if !decoded_ok {
            quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                format!("block payload fails to decode ({len} bytes)").as_bytes(),
            );
            self.dirty = true;
            return Ok(Some(empty(quarantine)));
        }
        self.decoded += records.len() as u64;
        Ok(Some(IngestChunk {
            records,
            quarantine,
        }))
    }
}

/// Drain a binary reader under an ingest policy: the binary peer of
/// [`crate::io::parse_stream_chunked`]. Strict mode aborts on the first
/// quarantined unit; lenient mode checks the `max_bad_frac` budget at
/// EOF (each damaged header/block is one quarantined unit against the
/// decoded records). Returns the parsed log, the quarantine report, and
/// the bytes/blocks consumed.
pub fn parse_binary_stream<R, T>(
    reader: R,
    bin: BinFormat<T>,
    opts: &IngestOptions,
) -> Result<(ParsedLog<T>, Quarantine, usize, u64), IngestError>
where
    R: Read,
{
    let mut chunked = BinReader::new(reader, bin).with_retry(opts.retry);
    let mut records: Vec<T> = Vec::new();
    let mut quarantine = Quarantine::default();
    let mut presized = false;
    while let Some(chunk) = chunked.next_chunk()? {
        if !presized && chunked.declared() > 0 {
            // The header's record count makes the read single-allocation.
            records.reserve_exact(chunked.declared().min(1 << 28) as usize);
            presized = true;
        }
        records.extend(chunk.records);
        quarantine.merge(&chunk.quarantine);
        if opts.is_strict() && !quarantine.is_empty() {
            return Err(IngestError::Corrupt {
                quarantine,
                lines_ok: records.len() as u64,
            });
        }
    }
    let total = records.len() as u64 + quarantine.total();
    if total > 0 && quarantine.total() as f64 / total as f64 > opts.max_bad_frac() {
        return Err(IngestError::Corrupt {
            quarantine,
            lines_ok: records.len() as u64,
        });
    }
    let skipped = quarantine.total();
    let (bytes, blocks) = (chunked.bytes_consumed(), chunked.blocks_read());
    Ok((ParsedLog { records, skipped }, quarantine, bytes, blocks))
}

/// Parse a log file in whichever format it is stored: sniffs the magic
/// bytes and dispatches to the binary block reader or the text
/// [`parse_file_streaming`] path. Both publish the same `parse.<stage>.*`
/// metrics and `ingest.quarantined.*` counters, so downstream
/// accounting is format-blind.
pub fn parse_file_auto<T>(
    path: &Path,
    line: LineFormat<T>,
    bin: BinFormat<T>,
    opts: &IngestOptions,
    stage: &str,
) -> Result<(ParsedLog<T>, Quarantine), IngestError>
where
    T: Send,
{
    if !file_is_binlog(path)? {
        return parse_file_streaming(path, line, opts, stage);
    }
    let mut span = astra_obs::span(&format!("parse.{stage}"));
    let file = std::fs::File::open(path)?;
    let (parsed, quarantine, bytes, blocks) = parse_binary_stream(file, bin, opts)?;
    span.attach("lines_ok", parsed.records.len() as i64);
    span.attach("lines_quarantined", quarantine.total() as i64);
    span.attach("bytes", bytes as i64);
    let obs = astra_obs::global();
    obs.counter(&format!("parse.{stage}.lines_ok"))
        .add(parsed.records.len() as u64);
    obs.counter(&format!("parse.{stage}.lines_skipped"))
        .add(parsed.skipped);
    obs.counter(&format!("parse.{stage}.bytes"))
        .add(bytes as u64);
    obs.counter(&format!("parse.{stage}.blocks")).add(blocks);
    publish_quarantine(&quarantine);
    Ok((parsed, quarantine))
}

/// CRC-sweep a binary log file without decoding its columns: header
/// validation, per-block CRC verification, and a one-varint peek at each
/// payload's record count, cross-checked against the header's declared
/// total. This is what makes `fsck` of binary logs cheap — no column
/// decode, no record construction.
pub fn fsck_scan(path: &Path, expected_kind: u8) -> io::Result<Quarantine> {
    let mut file = std::fs::File::open(path)?;
    let mut quarantine = Quarantine::default();
    let mut hdr = [0u8; HEADER_LEN];
    let n = read_fill_plain(&mut file, &mut hdr)?;
    let declared = match validate_header(&hdr[..n], expected_kind) {
        Ok(count) => count,
        Err((reason, msg)) => {
            quarantine.note(0, reason, msg.as_bytes());
            return Ok(quarantine);
        }
    };
    let mut offset = n as u64;
    let mut counted = 0u64;
    let mut payload = Vec::new();
    loop {
        let block_off = offset;
        let mut lenb = [0u8; 4];
        let n = read_fill_plain(&mut file, &mut lenb)?;
        offset += n as u64;
        if n == 0 {
            if quarantine.is_empty() && counted != declared {
                quarantine.note(
                    block_off,
                    QuarantineReason::TruncatedBlock,
                    format!("file ends after {counted} of {declared} declared records").as_bytes(),
                );
            }
            return Ok(quarantine);
        }
        if n < 4 {
            quarantine.note(
                block_off,
                QuarantineReason::TruncatedBlock,
                format!("block length cut short at EOF ({n} of 4 bytes)").as_bytes(),
            );
            return Ok(quarantine);
        }
        let len = u32::from_le_bytes(lenb) as usize;
        if len > MAX_BLOCK_BYTES {
            quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                format!("implausible block length {len}").as_bytes(),
            );
            return Ok(quarantine);
        }
        payload.clear();
        payload.resize(len, 0);
        let n = read_fill_plain(&mut file, &mut payload)?;
        offset += n as u64;
        if n < len {
            quarantine.note(
                block_off,
                QuarantineReason::TruncatedBlock,
                format!("block payload cut short at EOF ({n} of {len} bytes)").as_bytes(),
            );
            return Ok(quarantine);
        }
        let mut crcb = [0u8; 4];
        let n = read_fill_plain(&mut file, &mut crcb)?;
        offset += n as u64;
        if n < 4 {
            quarantine.note(
                block_off,
                QuarantineReason::TruncatedBlock,
                format!("block crc trailer cut short at EOF ({n} of 4 bytes)").as_bytes(),
            );
            return Ok(quarantine);
        }
        let stored = u32::from_le_bytes(crcb);
        let actual = crc32(&payload);
        if actual != stored {
            quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                format!("block crc mismatch: stored {stored:08x}, computed {actual:08x}")
                    .as_bytes(),
            );
            continue; // framing intact: sweep the rest
        }
        let mut pos = 0usize;
        match read_count(&payload, &mut pos) {
            Some(c) => counted += c as u64,
            None => quarantine.note(
                block_off,
                QuarantineReason::BlockCrc,
                "block payload fails to decode (bad record count)".as_bytes(),
            ),
        }
    }
}

fn read_fill_plain<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Slice-based block walk for small files held in memory (the binary
/// checkpoint reader): validates the header against `expected_kind` and
/// every block CRC, returning the declared record count and the block
/// payload slices. Any damage comes back as a one-line description —
/// checkpoint salvage treats a damaged candidate as absent.
pub fn read_blocks(data: &[u8], expected_kind: u8) -> Result<(u64, Vec<&[u8]>), String> {
    let count = validate_header(data.get(..HEADER_LEN).unwrap_or(data), expected_kind)
        .map_err(|(reason, msg)| format!("{reason}: {msg}"))?;
    let mut payloads = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < data.len() {
        let mut cursor = pos;
        let len = read_u32_le(data, &mut cursor)
            .ok_or_else(|| format!("truncated-block: block length cut short at offset {pos:#x}"))?
            as usize;
        let payload = data.get(cursor..cursor + len).ok_or_else(|| {
            format!("truncated-block: block payload cut short at offset {pos:#x}")
        })?;
        cursor += len;
        let stored = read_u32_le(data, &mut cursor)
            .ok_or_else(|| format!("truncated-block: block crc cut short at offset {pos:#x}"))?;
        let actual = crc32(payload);
        if actual != stored {
            return Err(format!(
                "block-crc: mismatch at offset {pos:#x}: stored {stored:08x}, computed {actual:08x}"
            ));
        }
        payloads.push(payload);
        pos = cursor;
    }
    Ok((count, payloads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_topology::SocketId;

    #[test]
    fn quantize_matches_the_text_formatter() {
        // The fast path must agree bit-for-bit with format!/parse — the
        // cross-format identity depends on it. Sweep magnitudes, signs,
        // boundary-adjacent values (x.?5 neighborhoods), and exact tenths.
        let mut probes: Vec<f64> = Vec::new();
        for i in -2000i64..2000 {
            probes.push(i as f64 / 10.0); // exact tenths
            probes.push(i as f64 / 20.0); // decimal ties (odd/20)
            probes.push(i as f64 * 0.0501 - 3.3);
            probes.push(i as f64 * 17.7701);
        }
        for e in [-3, 0, 3, 6, 9, 12] {
            let m = 10f64.powi(e);
            probes.extend([0.049_999 * m, 0.050_001 * m, 1.25 * m, -1.35 * m]);
        }
        for v in probes {
            let reference: f64 = format!("{v:.1}").parse().unwrap();
            assert_eq!(
                quantize_tenths(v).to_bits(),
                reference.to_bits(),
                "quantize({v:?}) diverged from the formatter"
            );
        }
    }

    fn ce(minute: i64, node: u32) -> CeRecord {
        let slot = DimmSlot::from_letter('E').unwrap();
        CeRecord {
            time: CalDate::new(2019, 3, 4).midnight().plus(minute),
            node: NodeId(node),
            socket: slot.socket(),
            slot,
            rank: RankId(1),
            bank: 3,
            row: None,
            col: 17,
            bit_pos: 133,
            addr: PhysAddr(0xABC0 + minute as u64),
            syndrome: 0x1A2B,
        }
    }

    fn write_to_vec<T>(bin: BinFormat<T>, records: &[T]) -> Vec<u8> {
        let mut out = Vec::new();
        write_records(&mut out, bin, records).unwrap();
        out
    }

    fn tolerant() -> IngestOptions {
        IngestOptions::lenient(Some(1.0))
    }

    #[test]
    fn tail_mode_holds_back_truncated_final_block() {
        // Simulate an append in progress: everything but the last few
        // bytes of the final block is on disk. A tailing reader must
        // wait for the writer instead of quarantining the torn block,
        // and must not flag the declared-count shortfall while growing.
        let records: Vec<CeRecord> = (0..100).map(|i| ce(i, (i as u32 * 3) % 2592)).collect();
        let data = write_to_vec(CE, &records);
        let dir =
            std::env::temp_dir().join(format!("astra-bin-tail-{}-{}", std::process::id(), line!()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ce.log");
        std::fs::write(&path, &data[..data.len() - 7]).unwrap();

        let f = std::fs::File::open(&path).unwrap();
        let mut r = BinReader::new(f, CE).with_tail(true);
        assert!(
            r.next_chunk().unwrap().is_none(),
            "block still being written"
        );
        assert!(r.next_chunk().unwrap().is_none(), "still dry");

        use std::io::Write as _;
        let mut w = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        w.write_all(&data[data.len() - 7..]).unwrap();
        drop(w);
        let chunk = r.next_chunk().unwrap().expect("completed block decodes");
        assert_eq!(chunk.records, records);
        assert!(chunk.quarantine.is_empty());
        assert!(r.next_chunk().unwrap().is_none(), "dry at the new EOF");

        // Once tailing ends, the clean EOF passes the declared-count
        // cross-check (everything promised by the header decoded).
        r.set_tail(false);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_end_surfaces_real_truncation() {
        // If tailing stops while a frame is still incomplete, the file
        // really is truncated and the next non-tail read must say so.
        let records: Vec<CeRecord> = (0..50).map(|i| ce(i, i as u32)).collect();
        let data = write_to_vec(CE, &records);
        let dir = std::env::temp_dir().join(format!(
            "astra-bin-tailend-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ce.log");
        std::fs::write(&path, &data[..data.len() - 9]).unwrap();

        let f = std::fs::File::open(&path).unwrap();
        let mut r = BinReader::new(f, CE).with_tail(true);
        assert!(r.next_chunk().unwrap().is_none(), "held back while tailing");
        r.set_tail(false);
        let chunk = r.next_chunk().unwrap().expect("truncation surfaces");
        assert!(chunk.records.is_empty());
        assert_eq!(chunk.quarantine.count(QuarantineReason::TruncatedBlock), 1);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ce_roundtrip_through_container() {
        let records: Vec<CeRecord> = (0..500).map(|i| ce(i, (i as u32 * 7) % 2592)).collect();
        let data = write_to_vec(CE, &records);
        let (parsed, quarantine, bytes, blocks) =
            parse_binary_stream(data.as_slice(), CE, &IngestOptions::default()).unwrap();
        assert_eq!(parsed.records, records);
        assert!(quarantine.is_empty());
        assert_eq!(bytes, data.len());
        assert_eq!(blocks, 1);
    }

    #[test]
    fn empty_file_roundtrip() {
        let data = write_to_vec(CE, &[]);
        assert_eq!(data.len(), HEADER_LEN);
        let (parsed, quarantine, ..) =
            parse_binary_stream(data.as_slice(), CE, &IngestOptions::default()).unwrap();
        assert!(parsed.records.is_empty());
        assert!(quarantine.is_empty());
    }

    #[test]
    fn multi_block_files_roundtrip() {
        let records: Vec<CeRecord> = (0..(BLOCK_RECORDS as i64 + 100))
            .map(|i| ce(i % 10_000, 3))
            .collect();
        let data = write_to_vec(CE, &records);
        let (parsed, _, _, blocks) =
            parse_binary_stream(data.as_slice(), CE, &IngestOptions::default()).unwrap();
        assert_eq!(parsed.records, records);
        assert_eq!(blocks, 2);
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        let records: Vec<CeRecord> = (0..2000).map(|i| ce(i, (i as u32) % 100)).collect();
        let data = write_to_vec(CE, &records);
        let text: usize = records.iter().map(|r| r.to_line().len() + 1).sum();
        assert!(
            data.len() * 4 < text,
            "binary {} should be >4x smaller than text {}",
            data.len(),
            text
        );
    }

    #[test]
    fn het_inventory_sensor_roundtrip() {
        let hets: Vec<HetRecord> = (0..100)
            .map(|i| HetRecord {
                time: CalDate::new(2019, 8, 23).midnight().plus(i),
                node: NodeId(i as u32),
                kind: HetKind::ALL[(i as usize) % 8],
                severity: HetKind::ALL[(i as usize) % 8].severity(),
                slot: (i % 3 == 0).then(|| DimmSlot::from_index((i % 16) as u8).unwrap()),
            })
            .collect();
        let data = write_to_vec(HET, &hets);
        let (parsed, ..) =
            parse_binary_stream(data.as_slice(), HET, &IngestOptions::default()).unwrap();
        assert_eq!(parsed.records, hets);

        let invs: Vec<ReplacementRecord> = (0..50)
            .map(|i| ReplacementRecord {
                date: CalDate::new(2019, 2, 18).plus_days(i),
                node: NodeId(5 + i as u32),
                component: match i % 3 {
                    0 => Component::Processor(SocketId((i % 2) as u8)),
                    1 => Component::Motherboard,
                    _ => Component::Dimm(DimmSlot::from_index((i % 16) as u8).unwrap()),
                },
            })
            .collect();
        let data = write_to_vec(INVENTORY, &invs);
        let (parsed, ..) =
            parse_binary_stream(data.as_slice(), INVENTORY, &IngestOptions::default()).unwrap();
        assert_eq!(parsed.records, invs);

        let sensors: Vec<SensorRecord> = (0..200)
            .map(|i| SensorRecord {
                time: CalDate::new(2019, 5, 20).midnight().plus(i),
                node: NodeId((i % 8) as u32 * 8),
                sensor: SensorId::from_index((i % 7) as u8).unwrap(),
                value: (i % 5 != 0).then(|| 40.0 + (i % 60) as f64 / 2.0),
            })
            .collect();
        let data = write_to_vec(SENSOR, &sensors);
        let (parsed, ..) =
            parse_binary_stream(data.as_slice(), SENSOR, &IngestOptions::default()).unwrap();
        assert_eq!(parsed.records, sensors);
    }

    #[test]
    fn flipped_bit_quarantines_one_block_lenient() {
        let records: Vec<CeRecord> = (0..(BLOCK_RECORDS as i64 * 2))
            .map(|i| ce(i % 10_000, 9))
            .collect();
        let mut data = write_to_vec(CE, &records);
        // Flip one payload bit inside the first block.
        data[HEADER_LEN + 4 + 100] ^= 0x40;
        let (parsed, quarantine, ..) =
            parse_binary_stream(data.as_slice(), CE, &tolerant()).unwrap();
        assert_eq!(quarantine.count(QuarantineReason::BlockCrc), 1);
        assert_eq!(
            parsed.records,
            records[BLOCK_RECORDS..],
            "second block must survive"
        );
        assert_eq!(quarantine.samples[0].line_no, HEADER_LEN as u64);
    }

    #[test]
    fn flipped_bit_aborts_strict() {
        let records: Vec<CeRecord> = (0..100).map(|i| ce(i, 9)).collect();
        let mut data = write_to_vec(CE, &records);
        let n = data.len();
        data[n - 20] ^= 0x01;
        let err = parse_binary_stream(data.as_slice(), CE, &IngestOptions::default()).unwrap_err();
        match err {
            IngestError::Corrupt { quarantine, .. } => {
                assert_eq!(quarantine.count(QuarantineReason::BlockCrc), 1);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_tail_is_quarantined() {
        let records: Vec<CeRecord> = (0..100).map(|i| ce(i, 9)).collect();
        let data = write_to_vec(CE, &records);
        let cut = &data[..data.len() - 7];
        let (parsed, quarantine, ..) = parse_binary_stream(cut, CE, &tolerant()).unwrap();
        assert!(parsed.records.is_empty());
        assert_eq!(quarantine.count(QuarantineReason::TruncatedBlock), 1);
    }

    #[test]
    fn truncated_header_and_wrong_magic() {
        let data = write_to_vec(CE, &[ce(1, 1)]);
        let (_, quarantine, ..) = parse_binary_stream(&data[..10], CE, &tolerant()).unwrap();
        assert_eq!(quarantine.count(QuarantineReason::BadVersion), 1);

        let mut wrong = data.clone();
        wrong[0] = b'X';
        let (_, quarantine, ..) = parse_binary_stream(wrong.as_slice(), CE, &tolerant()).unwrap();
        assert_eq!(quarantine.count(QuarantineReason::BadMagic), 1);
    }

    #[test]
    fn wrong_kind_is_bad_version() {
        let data = write_to_vec(CE, &[ce(1, 1)]);
        match parse_binary_stream(data.as_slice(), HET, &IngestOptions::default()) {
            Err(IngestError::Corrupt { quarantine, .. }) => {
                assert_eq!(quarantine.count(QuarantineReason::BadVersion), 1);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn header_crc_detects_count_tamper() {
        let mut data = write_to_vec(CE, &[ce(1, 1), ce(2, 1)]);
        data[12] ^= 0xFF; // count field
        let (_, quarantine, ..) = parse_binary_stream(data.as_slice(), CE, &tolerant()).unwrap();
        assert_eq!(quarantine.count(QuarantineReason::BadVersion), 1);
    }

    #[test]
    fn declared_count_mismatch_is_truncated_block() {
        // A file cut exactly on a block boundary: every CRC passes, but
        // the header count catches the missing tail.
        let records: Vec<CeRecord> = (0..(BLOCK_RECORDS as i64 + 50))
            .map(|i| ce(i % 10_000, 2))
            .collect();
        let data = write_to_vec(CE, &records);
        // Find the end of the first block.
        let mut pos = HEADER_LEN;
        let mut cur = pos;
        let len = read_u32_le(&data, &mut cur).unwrap() as usize;
        pos = cur + len + 4;
        let (parsed, quarantine, ..) = parse_binary_stream(&data[..pos], CE, &tolerant()).unwrap();
        assert_eq!(parsed.records.len(), BLOCK_RECORDS);
        assert_eq!(quarantine.count(QuarantineReason::TruncatedBlock), 1);
    }

    #[test]
    fn fsck_scan_matches_full_decode_verdicts() {
        let records: Vec<CeRecord> = (0..5000).map(|i| ce(i, 4)).collect();
        let dir = std::env::temp_dir().join(format!("binfmt-fsck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ce.log");

        // Clean file: clean sweep.
        std::fs::write(&path, write_to_vec(CE, &records)).unwrap();
        let q = fsck_scan(&path, KIND_CE).unwrap();
        assert!(q.is_empty(), "{}", q.summary());

        // Flip a payload bit: both paths report exactly one block-crc.
        let mut data = write_to_vec(CE, &records);
        data[HEADER_LEN + 4 + 1000] ^= 0x10;
        std::fs::write(&path, &data).unwrap();
        let sweep = fsck_scan(&path, KIND_CE).unwrap();
        let (_, full, ..) = parse_binary_stream(data.as_slice(), CE, &tolerant()).unwrap();
        assert_eq!(sweep.counts, full.counts);
        assert_eq!(sweep.count(QuarantineReason::BlockCrc), 1);

        // Truncate the tail: both paths report truncated-block.
        let cut = &data[..data.len() - 9];
        std::fs::write(&path, cut).unwrap();
        let sweep = fsck_scan(&path, KIND_CE).unwrap();
        assert_eq!(sweep.count(QuarantineReason::TruncatedBlock), 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_blocks_slice_walk() {
        let mut data = Vec::from(header_bytes(KIND_CHECKPOINT, 2));
        append_block(&mut data, b"section one");
        append_block(&mut data, b"section two");
        let (count, payloads) = read_blocks(&data, KIND_CHECKPOINT).unwrap();
        assert_eq!(count, 2);
        assert_eq!(payloads, vec![&b"section one"[..], &b"section two"[..]]);

        // Tamper with a payload byte.
        let idx = HEADER_LEN + 4 + 2;
        data[idx] ^= 0xFF;
        assert!(read_blocks(&data, KIND_CHECKPOINT)
            .unwrap_err()
            .contains("block-crc"));
        data[idx] ^= 0xFF;
        // Truncate mid-block.
        assert!(read_blocks(&data[..data.len() - 2], KIND_CHECKPOINT)
            .unwrap_err()
            .contains("truncated-block"));
        // Wrong kind.
        assert!(read_blocks(&data, KIND_CE)
            .unwrap_err()
            .contains("bad-version"));
    }

    #[test]
    fn sniffing() {
        let data = write_to_vec(CE, &[ce(1, 1)]);
        assert!(sniff_is_binlog(&data));
        assert!(!sniff_is_binlog(b"2019-03-04T12:01:00 node0123 kernel:"));
        assert!(!sniff_is_binlog(b"ASTR"));
    }
}

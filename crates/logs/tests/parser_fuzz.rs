//! Property fuzz for the ingest path: random byte mutations of valid log
//! lines, fed through the real chunked reader, must either parse or land
//! in a typed quarantine bucket — never panic, and never vanish: every
//! non-blank line is accounted for as exactly one record or one
//! quarantined line, at any chunk size, for all four log formats.

use std::io::Cursor;

use astra_logs::chaos::FailingReader;
use astra_logs::io::ChunkReader;
use astra_logs::{ce, het, inventory, sensor, LineFormat, RetryPolicy};
use proptest::prelude::*;

/// One known-good line per format (the `to_line` shapes the parsers'
/// own unit tests pin down).
const CE_LINE: &str = "2019-03-04T12:01:00 node0123 kernel: EDAC MC0: CE slot=E rank=1 \
                       bank=3 row=- col=17 bit=133 addr=0x000000abc0 synd=0x1a2b";
const HET_LINE: &str =
    "2019-08-25T03:10:00 node0012 HET: event=uncorrectableECC severity=NON-RECOVERABLE slot=D";
const INV_LINE: &str = "2019-02-18 node0005 inventory: component=dimm slot=J";
const SENSOR_LINE: &str = "2019-05-20T00:00:00 node0001 BMC: sensor=power value=312.5";

/// Overwrite bytes of `base` at the given (wrapped) positions. Mutations
/// may hit newlines — joining lines is corruption too.
fn mutate(base: &[u8], edits: &[(usize, u8)]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    for &(pos, val) in edits {
        let i = pos % bytes.len();
        bytes[i] = val;
    }
    bytes
}

/// The number of lines the ingest contract must account for: split on
/// `\n`, strip one trailing `\r`, skip valid-UTF-8 whitespace-only
/// segments (invalid UTF-8 is never blank — it quarantines).
fn nonblank_lines(buf: &[u8]) -> u64 {
    buf.split(|&b| b == b'\n')
        .filter(|seg| {
            let seg = if let [head @ .., b'\r'] = seg {
                head
            } else {
                seg
            };
            std::str::from_utf8(seg).map_or(true, |s| !s.trim().is_empty())
        })
        .count() as u64
}

/// Drain a reader through `ChunkReader`, returning
/// `(records, quarantined, lines_seen)`.
fn drain<R: std::io::Read, T: Send>(
    reader: R,
    format: LineFormat<T>,
    chunk_bytes: usize,
    retry: RetryPolicy,
) -> (u64, u64, u64) {
    let mut reader = ChunkReader::new(reader, format, chunk_bytes).with_retry(retry);
    let mut records = 0u64;
    let mut quarantined = 0u64;
    loop {
        match reader.next_chunk() {
            Ok(Some(chunk)) => {
                records += chunk.records.len() as u64;
                quarantined += chunk.quarantine.total();
            }
            Ok(None) => break,
            Err(e) => panic!("in-memory ingest must not fail: {e}"),
        }
    }
    (records, quarantined, reader.lines_seen())
}

/// The core property: parse-or-quarantine, nothing lost, nothing extra.
fn assert_accounted<T: Send>(buf: &[u8], format: LineFormat<T>, chunk_bytes: usize) {
    let expected = nonblank_lines(buf);
    let (records, quarantined, lines) = drain(
        Cursor::new(buf.to_vec()),
        format,
        chunk_bytes,
        RetryPolicy::default(),
    );
    assert_eq!(
        records + quarantined,
        expected,
        "records {records} + quarantined {quarantined} != {expected} non-blank lines \
         (chunk_bytes {chunk_bytes}, buffer {:?})",
        String::from_utf8_lossy(buf)
    );
    assert_eq!(
        lines,
        buf.split(|&b| b == b'\n').count() as u64 - u64::from(buf.last() == Some(&b'\n')),
        "lines_seen must count every physical line"
    );
}

/// Apply the property to one format: a buffer of valid lines, mutated.
fn check_format<T: Send>(
    line: &str,
    format: LineFormat<T>,
    copies: usize,
    edits: &[(usize, u8)],
    chunk_bytes: usize,
) {
    let mut base = Vec::new();
    for _ in 0..copies {
        base.extend_from_slice(line.as_bytes());
        base.push(b'\n');
    }
    let buf = mutate(&base, edits);
    assert_accounted(&buf, format, chunk_bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prop_mutated_ce_lines_parse_or_quarantine(
        copies in 1usize..6,
        edits in proptest::collection::vec((0usize..4096, 0u32..256), 1..8),
        chunk_bytes in 1usize..192,
    ) {
        let edits: Vec<(usize, u8)> = edits.iter().map(|&(p, v)| (p, v as u8)).collect();
        check_format(CE_LINE, ce::FORMAT, copies, &edits, chunk_bytes);
    }

    #[test]
    fn prop_mutated_het_lines_parse_or_quarantine(
        copies in 1usize..6,
        edits in proptest::collection::vec((0usize..4096, 0u32..256), 1..8),
        chunk_bytes in 1usize..192,
    ) {
        let edits: Vec<(usize, u8)> = edits.iter().map(|&(p, v)| (p, v as u8)).collect();
        check_format(HET_LINE, het::FORMAT, copies, &edits, chunk_bytes);
    }

    #[test]
    fn prop_mutated_inventory_lines_parse_or_quarantine(
        copies in 1usize..6,
        edits in proptest::collection::vec((0usize..4096, 0u32..256), 1..8),
        chunk_bytes in 1usize..192,
    ) {
        let edits: Vec<(usize, u8)> = edits.iter().map(|&(p, v)| (p, v as u8)).collect();
        check_format(INV_LINE, inventory::FORMAT, copies, &edits, chunk_bytes);
    }

    #[test]
    fn prop_mutated_sensor_lines_parse_or_quarantine(
        copies in 1usize..6,
        edits in proptest::collection::vec((0usize..4096, 0u32..256), 1..8),
        chunk_bytes in 1usize..192,
    ) {
        let edits: Vec<(usize, u8)> = edits.iter().map(|&(p, v)| (p, v as u8)).collect();
        check_format(SENSOR_LINE, sensor::FORMAT, copies, &edits, chunk_bytes);
    }

    #[test]
    fn prop_flaky_reads_change_nothing(
        seed in 0u64..1_000_000,
        edits in proptest::collection::vec((0usize..4096, 0u32..256), 0..6),
        chunk_bytes in 1usize..128,
    ) {
        // A flaky transport (transient errors + short reads) under the
        // bounded retry policy must yield byte-for-byte the same ingest
        // as a perfect read of the same mutated buffer.
        let edits: Vec<(usize, u8)> = edits.iter().map(|&(p, v)| (p, v as u8)).collect();
        let mut base = Vec::new();
        for _ in 0..4 {
            base.extend_from_slice(CE_LINE.as_bytes());
            base.push(b'\n');
        }
        let buf = mutate(&base, &edits);
        // Zero backoff: FailingReader bounds consecutive failures below
        // the retry budget, so sleeping would only slow the test down.
        let retry = RetryPolicy { max_retries: 4, backoff_base_ms: 0 };
        let direct = drain(Cursor::new(buf.clone()), ce::FORMAT, chunk_bytes, retry);
        let flaky = drain(
            FailingReader::new(Cursor::new(buf), seed),
            ce::FORMAT,
            chunk_bytes,
            retry,
        );
        prop_assert_eq!(direct, flaky);
    }
}

//! Cross-format round-trip properties for the `astra-binlog` columnar
//! format: for every record type, text→binary→text and
//! binary→text→binary are identities, and corrupt binary containers land
//! in quarantine (lenient) or abort the ingest (strict) exactly like
//! corrupt text logs do.
//!
//! Generators stay inside the canonical record domain the two formats
//! share — valid slots/ranks/sensors, sockets derived from the slot, and
//! sensor values with one decimal digit (the text format's `value={v:.1}`
//! precision, which the binary encoder quantizes to as well).

use astra_logs::binfmt::{self, BinFormat};
use astra_logs::{ce, het, inventory, sensor, IngestOptions, LineFormat, QuarantineReason};
use astra_logs::{
    CeRecord, Component, HetKind, HetRecord, HetSeverity, ReplacementRecord, SensorRecord,
};
use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId, SensorId, SocketId};
use astra_util::CalDate;
use proptest::prelude::*;

const SEVERITIES: [HetSeverity; 3] = [
    HetSeverity::Warning,
    HetSeverity::Critical,
    HetSeverity::NonRecoverable,
];

fn minute(day: i64, minute_of_day: i64) -> astra_util::Minute {
    CalDate::new(2019, 1, 1)
        .midnight()
        .plus(day * 1440 + minute_of_day)
}

/// Encode records into a complete container (header + blocks).
fn container<T>(bin: BinFormat<T>, records: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    binfmt::write_records(&mut out, bin, records).expect("Vec sink cannot fail");
    out
}

/// Strict full decode of a container; panics on any quarantine.
fn decode_all<T: Send>(bin: BinFormat<T>, data: &[u8]) -> Vec<T> {
    let (parsed, q, ..) = binfmt::parse_binary_stream(data, bin, &IngestOptions::default())
        .expect("clean container must decode strictly");
    assert!(q.is_empty());
    parsed.records
}

/// The two identities, checked from both starting points:
/// text→binary→text compares rendered lines, binary→text→binary
/// compares container bytes.
fn assert_round_trips<T>(records: &[T], format: LineFormat<T>, bin: BinFormat<T>)
where
    T: Clone + PartialEq + std::fmt::Debug + Send,
    T: RenderLine,
{
    // text → binary → text
    let lines: Vec<String> = records.iter().map(RenderLine::line).collect();
    let reparsed: Vec<T> = lines
        .iter()
        .map(|l| (format.parse)(l).expect("canonical record must parse from its own line"))
        .collect();
    let bytes = container(bin, &reparsed);
    let decoded = decode_all(bin, &bytes);
    let lines2: Vec<String> = decoded.iter().map(RenderLine::line).collect();
    assert_eq!(lines, lines2, "text->binary->text must be identity");

    // binary → text → binary
    let bytes1 = container(bin, records);
    let from_bin = decode_all(bin, &bytes1);
    let through_text: Vec<T> = from_bin
        .iter()
        .map(|r| (format.parse)(&r.line()).expect("decoded record must render a parseable line"))
        .collect();
    let bytes2 = container(bin, &through_text);
    assert_eq!(bytes1, bytes2, "binary->text->binary must be identity");
}

/// `to_line` without naming each concrete type at every call site.
trait RenderLine {
    fn line(&self) -> String;
}

impl RenderLine for CeRecord {
    fn line(&self) -> String {
        self.to_line()
    }
}
impl RenderLine for HetRecord {
    fn line(&self) -> String {
        self.to_line()
    }
}
impl RenderLine for ReplacementRecord {
    fn line(&self) -> String {
        self.to_line()
    }
}
impl RenderLine for SensorRecord {
    fn line(&self) -> String {
        self.to_line()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_ce_round_trips(
        raws in proptest::collection::vec(
            (
                (0i64..365, 0i64..1440, 0u32..10_000, 0u8..16, 0u8..2),
                (0u16..64, proptest::option::of(0u32..1_000_000), 0u16..2048,
                 0u16..1024, 0u64..(1 << 44)),
                0u32..0x1_0000,
            ),
            1..40,
        ),
    ) {
        let records: Vec<CeRecord> = raws
            .iter()
            .map(|&((day, min, node, slot, rank), (bank, row, col, bit, addr), synd)| {
                let slot = DimmSlot::from_index(slot).unwrap();
                CeRecord {
                    time: minute(day, min),
                    node: NodeId(node),
                    socket: slot.socket(),
                    slot,
                    rank: RankId(rank),
                    bank,
                    row,
                    col,
                    bit_pos: bit,
                    addr: PhysAddr(addr),
                    syndrome: synd,
                }
            })
            .collect();
        assert_round_trips(&records, ce::FORMAT, binfmt::CE);
    }

    #[test]
    fn prop_het_round_trips(
        raws in proptest::collection::vec(
            (0i64..365, 0i64..1440, 0u32..10_000, 0usize..8, 0usize..3,
             proptest::option::of(0u8..16)),
            1..40,
        ),
    ) {
        let records: Vec<HetRecord> = raws
            .iter()
            .map(|&(day, min, node, kind, sev, slot)| HetRecord {
                time: minute(day, min),
                node: NodeId(node),
                kind: HetKind::ALL[kind],
                severity: SEVERITIES[sev],
                slot: slot.map(|s| DimmSlot::from_index(s).unwrap()),
            })
            .collect();
        assert_round_trips(&records, het::FORMAT, binfmt::HET);
    }

    #[test]
    fn prop_inventory_round_trips(
        raws in proptest::collection::vec(
            (0i64..365, 0u32..10_000, 0u8..3, 0u8..16),
            1..40,
        ),
    ) {
        let records: Vec<ReplacementRecord> = raws
            .iter()
            .map(|&(day, node, tag, arg)| ReplacementRecord {
                date: CalDate::from_day_index(CalDate::new(2019, 1, 1).day_index() + day),
                node: NodeId(node),
                component: match tag {
                    0 => Component::Processor(SocketId(arg % 2)),
                    1 => Component::Motherboard,
                    _ => Component::Dimm(DimmSlot::from_index(arg).unwrap()),
                },
            })
            .collect();
        assert_round_trips(&records, inventory::FORMAT, binfmt::INVENTORY);
    }

    #[test]
    fn prop_sensor_round_trips(
        raws in proptest::collection::vec(
            (0i64..365, 0i64..1440, 0u32..10_000, 0u8..7,
             proptest::option::of(0i64..50_000)),
            1..40,
        ),
    ) {
        let records: Vec<SensorRecord> = raws
            .iter()
            .map(|&(day, min, node, sensor_idx, tenths)| SensorRecord {
                time: minute(day, min),
                node: NodeId(node),
                sensor: SensorId::from_index(sensor_idx).unwrap(),
                // One decimal digit: the precision the text format keeps.
                value: tenths.map(|t| t as f64 / 10.0),
            })
            .collect();
        assert_round_trips(&records, sensor::FORMAT, binfmt::SENSOR);
    }

    #[test]
    fn prop_corrupt_containers_quarantine_or_abort(
        n in 20usize..120,
        flip_at in 0usize..1_000_000,
        flip_bit in 0u8..8,
        cut in 1usize..10,
        mode in 0u8..2,
    ) {
        // A multi-block container, so damage can leave survivors.
        let records: Vec<CeRecord> = (0..n as i64)
            .map(|i| {
                let slot = DimmSlot::from_index((i % 16) as u8).unwrap();
                CeRecord {
                    time: minute(i / 1440, i % 1440),
                    node: NodeId(7),
                    socket: slot.socket(),
                    slot,
                    rank: RankId(0),
                    bank: 1,
                    row: None,
                    col: 3,
                    bit_pos: 5,
                    addr: PhysAddr(0x1000 + i as u64),
                    syndrome: 0xABCD,
                }
            })
            .collect();
        let mut data = Vec::from(binfmt::header_bytes(binfmt::KIND_CE, n as u64));
        for chunk in records.chunks(n / 4 + 1) {
            let mut payload = Vec::new();
            (binfmt::CE.encode)(chunk, &mut payload);
            binfmt::append_block(&mut data, &payload);
        }

        let damaged = if mode == 0 {
            // Single-bit flip anywhere past the magic: whatever it hits
            // (header CRC, framing, payload) must be caught.
            let mut d = data.clone();
            let at = 8 + flip_at % (d.len() - 8);
            d[at] ^= 1 << flip_bit;
            d
        } else {
            // Torn tail.
            data[..data.len() - cut.min(data.len() - binfmt::HEADER_LEN - 1)].to_vec()
        };

        // Strict: abort, exactly like a corrupt text log.
        let strict = binfmt::parse_binary_stream(
            damaged.as_slice(), binfmt::CE, &IngestOptions::default());
        prop_assert!(strict.is_err(), "strict ingest must abort on corruption");

        // Lenient: quarantined under a binary reason, never dropped
        // silently, and survivors are a prefix-union of clean blocks.
        let (parsed, q, ..) = binfmt::parse_binary_stream(
            damaged.as_slice(), binfmt::CE, &IngestOptions::lenient(Some(1.0)))
            .expect("unbounded lenient ingest must not abort");
        prop_assert!(!q.is_empty(), "corruption must be quarantined");
        for reason in QuarantineReason::ALL {
            if q.count(reason) > 0 {
                prop_assert!(reason.is_binary(), "binary file, binary reason: {reason}");
            }
        }
        prop_assert!(parsed.records.len() <= n);
        prop_assert!(parsed.records.iter().all(|r| records.contains(r)),
            "lenient ingest must never invent records");
    }
}

//! Pluggable platform profiles.
//!
//! The paper characterizes one machine — Astra's Arm/DDR4 fleet — but
//! every calibration knob in this workspace is per-platform, not
//! universal: the fault-mode mix, slot/rank skew, ECC scheme, DUE rate,
//! thermal envelope, and topology shape all differ between machine
//! families. A [`PlatformProfile`] bundles the previously scattered
//! calibration state (`SimProfile`, `ThermalProfile`,
//! `ReplacementProfile`, topology shape, ECC policy) into one named,
//! registry-addressable pack, so the same pipeline can simulate and
//! analyze *different machines* — the precondition for the predictor
//! transfer-matrix question ("does a model trained on platform A work on
//! platform B?") asked by "Investigating Memory Failure Prediction
//! Across CPU Architectures" (PAPERS.md).
//!
//! Three profiles ship:
//!
//! * [`PlatformProfile::astra`] — the paper's machine, verbatim: reuses
//!   the calibrated `::astra()` constructors of every sub-profile, so
//!   generation through this profile is **bit-identical** to the
//!   historical default at the same seed (pinned by test and CI).
//! * [`PlatformProfile::x86_ddr4`] — an x86 DDR4 field-study fleet in
//!   the style of Beigi et al. / Sridharan et al.: Chipkill ECC, a mode
//!   mix tilted toward column/row/bank footprints, no airflow-induced
//!   rank/slot skew, and a higher DUE rate.
//! * [`PlatformProfile::datacenter`] — a Meza-style warehouse fleet:
//!   heavier per-node fault tail, more pathological DIMMs, firmware that
//!   only began logging CEs mid-span (the CE-gating knob), SEC-DED.
//!
//! Each knob's mapping back to its source paper is documented in
//! DESIGN.md §15.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use astra_faultsim::{EccModel, SimProfile};
use astra_replace::ReplacementProfile;
use astra_telemetry::ThermalProfile;
use astra_topology::{DimmSlot, DramGeometry, SystemConfig};
use astra_util::CalDate;

/// The structural shape of a machine family: how a rack count expands
/// into a full [`SystemConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyShape {
    /// Rack count of the full machine (what `racks = None` means).
    pub default_racks: u32,
    /// Chassis stacked in one rack.
    pub chassis_per_rack: u32,
    /// Nodes per chassis. Currently always 4: node→chassis arithmetic
    /// (`NodeId::PER_CHASSIS`) is a fixed constant of the id scheme.
    pub nodes_per_chassis: u32,
    /// DIMM slots per node. Currently always [`DimmSlot::COUNT`] (16):
    /// slot letters A–P are baked into the log formats.
    pub dimm_slots_per_node: u32,
    /// DRAM geometry of every DIMM.
    pub geometry: DramGeometry,
}

impl TopologyShape {
    /// Expand to a [`SystemConfig`], at `racks` when given or the
    /// profile's full machine size otherwise.
    pub fn system(&self, racks: Option<u32>) -> SystemConfig {
        SystemConfig {
            racks: racks.unwrap_or(self.default_racks),
            chassis_per_rack: self.chassis_per_rack,
            nodes_per_chassis: self.nodes_per_chassis,
            geometry: self.geometry,
        }
    }

    /// Total nodes of the full (default-racks) machine.
    pub fn default_nodes(&self) -> u32 {
        self.default_racks * self.chassis_per_rack * self.nodes_per_chassis
    }
}

/// ECC scheme plus the firmware policy layered on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccPolicy {
    /// The code itself (SEC-DED or Chipkill).
    pub model: EccModel,
    /// Whether the memory controller actually performs multi-device
    /// (symbol) correction when the code would allow it. Chipkill-capable
    /// controllers are sometimes run in a performance mode where aligned
    /// multi-device hits escalate to DUEs anyway.
    pub multi_device_correction: bool,
}

impl EccPolicy {
    /// Whether a fault spanning `devices` aligned DRAM devices stays
    /// correctable under this policy (the §3.2 visibility question).
    pub fn multi_device_correctable(&self, devices: u32) -> bool {
        if devices > 0 && !self.multi_device_correction {
            return false;
        }
        self.model.multi_device_correctable(devices)
    }
}

/// One machine family's complete calibration pack.
#[derive(Debug, Clone)]
pub struct PlatformProfile {
    /// Registry name (`--profile NAME`, manifest `profile=` key).
    pub name: &'static str,
    /// One-line description for `astra-mem profiles`.
    pub description: &'static str,
    /// Fault/error generator calibration.
    pub sim: SimProfile,
    /// Thermal/power model calibration.
    pub thermal: ThermalProfile,
    /// Component-replacement hazard calibration.
    pub replacement: ReplacementProfile,
    /// Machine shape.
    pub topology: TopologyShape,
    /// ECC scheme + firmware correction policy.
    pub ecc: EccPolicy,
}

impl PlatformProfile {
    /// The paper's machine, bit-identical to the historical hardcoded
    /// default: every sub-profile is the calibrated `::astra()`
    /// constructor, the topology is [`SystemConfig::astra`]'s shape.
    pub fn astra() -> PlatformProfile {
        PlatformProfile {
            name: "astra",
            description: "Sandia Astra: petascale Arm/DDR4, SEC-DED, \
                          airflow-skewed slots/ranks (the source paper)",
            sim: SimProfile::astra(),
            thermal: ThermalProfile::astra(),
            replacement: ReplacementProfile::astra(),
            topology: TopologyShape {
                default_racks: 36,
                chassis_per_rack: 18,
                nodes_per_chassis: 4,
                dimm_slots_per_node: DimmSlot::COUNT as u32,
                geometry: DramGeometry::ASTRA,
            },
            ecc: EccPolicy {
                model: EccModel::SecDed,
                multi_device_correction: false,
            },
        }
    }

    /// An x86 DDR4 field-study fleet (Beigi et al., Sridharan et al.):
    /// Chipkill, a fault-mode mix with much more column/row/bank weight,
    /// no airflow-driven positional skew, a higher DUE rate, and a
    /// stronger CE→UE escalation link.
    pub fn x86_ddr4() -> PlatformProfile {
        let mut sim = SimProfile::astra();
        // Beigi et al. report single-bit faults near 60 % with the rest
        // spread across larger footprints; Sridharan's DDR4 studies see
        // a small but persistent multi-rank (pin) population even on
        // healthy fleets.
        sim.mode_weights = [0.62, 0.06, 0.13, 0.09, 0.08, 0.02];
        sim.susceptible_fraction = 0.35;
        sim.node_fault_alpha = 1.6;
        // Commodity 2U airflow has no Astra-style front-to-back DIMM
        // asymmetry: ranks and slots fault uniformly.
        sim.rank0_weight = 0.5;
        sim.slot_weights = [1.0; 16];
        sim.region_fault_mult = [1.0, 1.0, 1.0];
        sim.onset_decline = 0.0;
        sim.burst_mean = 2.0;
        // Fewer pathological outliers, none pinned to one rack.
        sim.pathological_per_1000_nodes = 2.0;
        sim.spike_rack_share = 0.0;
        // Field DDR4 DUE rates run well above Astra's 0.00948 (§3.5
        // notes Astra is unusually low); CE-carrying DIMMs dominate.
        sim.due_rate_per_dimm_year = 0.024;
        sim.due_on_faulty_share = 0.70;
        // Mature platform: event telemetry covers the whole span.
        sim.het_start = CalDate::new(2019, 1, 20);
        sim.ce_log_start = None;
        sim.het_reference_nodes = 2592.0;

        let mut thermal = ThermalProfile::astra();
        thermal.inlet_temp = 22.0;
        thermal.cpu_idle_rise = [32.0, 32.0];
        thermal.dimm_idle_rise = [15.0, 15.0, 15.0, 15.0];
        thermal.idle_power = 180.0;
        thermal.dynamic_power = 220.0;

        let mut replacement = ReplacementProfile::astra();
        // No Arm bring-up churn: an order of magnitude fewer processor
        // and motherboard swaps; DIMMs near field-study annual rates.
        replacement.processors.replacement_rate = 0.020;
        replacement.motherboards.replacement_rate = 0.010;
        replacement.dimms.replacement_rate = 0.025;

        PlatformProfile {
            name: "x86-ddr4",
            description: "x86/DDR4 field-study fleet (Beigi, Sridharan): \
                          Chipkill, uniform slots, higher DUE rate",
            sim,
            thermal,
            replacement,
            topology: TopologyShape {
                // 54 racks x 12 chassis x 4 nodes = 2,592 nodes: same
                // fleet size as Astra in a shallower rack form factor.
                default_racks: 54,
                chassis_per_rack: 12,
                nodes_per_chassis: 4,
                dimm_slots_per_node: DimmSlot::COUNT as u32,
                geometry: DramGeometry::ASTRA,
            },
            ecc: EccPolicy {
                model: EccModel::Chipkill,
                multi_device_correction: true,
            },
        }
    }

    /// A Meza-style warehouse-scale fleet: heavier per-node fault tail,
    /// more pathological DIMMs, SEC-DED, and firmware that only began
    /// logging CEs on March 1 (the CE-gating knob in action).
    pub fn datacenter() -> PlatformProfile {
        let mut sim = SimProfile::astra();
        // Meza et al.: fault concentration even stronger than Astra's —
        // a small set of hosts carries most errors.
        sim.susceptible_fraction = 0.30;
        sim.node_fault_alpha = 1.1;
        sim.node_fault_cap = 120;
        sim.mode_weights = [0.72, 0.05, 0.10, 0.06, 0.06, 0.01];
        sim.rank0_weight = 0.55;
        sim.slot_weights = [1.0; 16];
        sim.region_fault_mult = [0.98, 1.0, 1.02];
        sim.pathological_per_1000_nodes = 7.0;
        sim.spike_rack_share = 0.15;
        sim.spike_rack = 5;
        sim.due_rate_per_dimm_year = 0.015;
        sim.due_on_faulty_share = 0.60;
        sim.het_start = CalDate::new(2019, 1, 20);
        // Firmware CE reporting rolled out mid-span: earlier CEs were
        // simply never logged (faults, and their DUEs, still happened).
        sim.ce_log_start = Some(CalDate::new(2019, 3, 1));
        sim.het_reference_nodes = 2592.0;

        let mut thermal = ThermalProfile::astra();
        thermal.inlet_temp = 24.0;
        thermal.busy_util = 0.90;
        thermal.busy_prob = 0.80;
        thermal.diurnal_amplitude = 0.18;

        let mut replacement = ReplacementProfile::astra();
        replacement.processors.replacement_rate = 0.030;
        replacement.motherboards.replacement_rate = 0.015;
        replacement.dimms.replacement_rate = 0.050;

        PlatformProfile {
            name: "datacenter",
            description: "Meza-style warehouse fleet: heavy fault tail, \
                          SEC-DED, CE logging gated until March 1",
            sim,
            thermal,
            replacement,
            topology: TopologyShape {
                // 27 racks x 24 chassis x 4 nodes = 2,592 nodes: denser
                // racks, fewer of them.
                default_racks: 27,
                chassis_per_rack: 24,
                nodes_per_chassis: 4,
                dimm_slots_per_node: DimmSlot::COUNT as u32,
                geometry: DramGeometry::ASTRA,
            },
            ecc: EccPolicy {
                model: EccModel::SecDed,
                multi_device_correction: false,
            },
        }
    }

    /// Expand this profile's topology to a [`SystemConfig`] at `racks`
    /// (or the full machine when `None`).
    pub fn system(&self, racks: Option<u32>) -> SystemConfig {
        self.topology.system(racks)
    }
}

/// Names of every registered profile, in registry order.
pub const PROFILE_NAMES: [&str; 3] = ["astra", "x86-ddr4", "datacenter"];

/// Every registered profile, in [`PROFILE_NAMES`] order.
pub fn registry() -> Vec<PlatformProfile> {
    vec![
        PlatformProfile::astra(),
        PlatformProfile::x86_ddr4(),
        PlatformProfile::datacenter(),
    ]
}

/// A `--profile` / manifest name that is not in the registry. The
/// rendered message lists what *is* registered, so the operator never
/// has to guess.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProfile(pub String);

impl std::fmt::Display for UnknownProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown platform profile {:?} (registered: {})",
            self.0,
            PROFILE_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownProfile {}

/// Look a profile up by registry name.
pub fn by_name(name: &str) -> Result<PlatformProfile, UnknownProfile> {
    match name {
        "astra" => Ok(PlatformProfile::astra()),
        "x86-ddr4" => Ok(PlatformProfile::x86_ddr4()),
        "datacenter" => Ok(PlatformProfile::datacenter()),
        other => Err(UnknownProfile(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astra_profile_matches_hardcoded_constructors() {
        let p = PlatformProfile::astra();
        // The bit-identity contract: the bundled sub-profiles must be the
        // exact calibrated constructors the pipeline used before profiles
        // existed, and the topology must be SystemConfig::astra's shape.
        assert_eq!(p.sim.mode_weights, SimProfile::astra().mode_weights);
        assert_eq!(p.sim.het_reference_nodes, 2592.0);
        assert_eq!(p.sim.ce_log_start, None);
        assert_eq!(p.system(None), SystemConfig::astra());
        assert_eq!(p.system(Some(4)), SystemConfig::scaled(4));
        assert_eq!(p.ecc.model, EccModel::SecDed);
    }

    #[test]
    fn registry_names_round_trip() {
        for (i, name) in PROFILE_NAMES.iter().enumerate() {
            let p = by_name(name).expect("registered name resolves");
            assert_eq!(p.name, *name);
            assert_eq!(registry()[i].name, *name);
            assert!(!p.description.is_empty());
        }
    }

    #[test]
    fn unknown_name_lists_registry() {
        let err = by_name("sparc").unwrap_err();
        let msg = err.to_string();
        for name in PROFILE_NAMES {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
        assert!(msg.contains("sparc"));
    }

    #[test]
    fn all_profiles_are_structurally_valid() {
        for p in registry() {
            // Node→chassis arithmetic is a fixed constant of the id
            // scheme; region math needs chassis divisible into thirds.
            assert_eq!(p.topology.nodes_per_chassis, 4, "{}", p.name);
            assert_eq!(p.topology.chassis_per_rack % 3, 0, "{}", p.name);
            assert_eq!(p.topology.dimm_slots_per_node, 16, "{}", p.name);
            assert!(p.topology.default_racks > 0);
            let total: f64 = p.sim.mode_weights.iter().sum();
            assert!(total > 0.9 && total < 1.1, "{} mode weights", p.name);
            assert!((0.0..=1.0).contains(&p.sim.susceptible_fraction));
            assert!(p.sim.due_rate_per_dimm_year > 0.0);
            assert!(p.sim.het_reference_nodes > 0.0);
        }
    }

    #[test]
    fn fleet_sizes_match_across_profiles() {
        // All three profiles model a 2,592-node fleet at full size, so
        // cross-profile comparisons are per-machine comparable.
        for p in registry() {
            assert_eq!(p.topology.default_nodes(), 2592, "{}", p.name);
        }
    }

    #[test]
    fn ecc_policy_respects_correction_switch() {
        let chipkill_on = EccPolicy {
            model: EccModel::Chipkill,
            multi_device_correction: true,
        };
        let chipkill_off = EccPolicy {
            model: EccModel::Chipkill,
            multi_device_correction: false,
        };
        assert!(chipkill_on.multi_device_correctable(1));
        assert!(!chipkill_on.multi_device_correctable(2));
        assert!(!chipkill_off.multi_device_correctable(1));
    }
}

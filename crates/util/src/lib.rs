//! Foundation utilities for the `astra-mem` workspace.
//!
//! This crate holds the pieces every other crate leans on:
//!
//! * [`rng`] — deterministic, *order-independent* random number streams.
//!   Every simulated entity (a node, a DIMM, a fault) derives its own RNG
//!   stream from `(seed, entity key)` so simulation results do not depend on
//!   iteration order or thread count.
//! * [`dist`] — the probability distributions the simulators need (normal,
//!   lognormal, Poisson, Weibull, discrete power law, …). The standard Rust
//!   ecosystem splits these across crates with varying quality; the set we
//!   need is small enough to implement and test directly.
//! * [`time`] — simulated wall-clock time for the study interval
//!   (January–September 2019): minute-resolution timestamps, calendar dates,
//!   month bucketing, and RFC-3339-style formatting for log records.
//! * [`par`] — scoped-thread data parallelism (`par_map`, `par_fold`) used to
//!   fan simulation and analysis out across cores without adding a thread
//!   pool dependency.
//! * [`crc`] — CRC-32 checksums guarding checkpoint sections against torn
//!   writes.
//! * [`codec`] — varint/zigzag/delta column codecs shared by the binary
//!   log format and the binary checkpoint encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod dist;
pub mod par;
pub mod rng;
pub mod time;

pub use crc::crc32;
pub use rng::{splitmix64, DetRng, StreamKey};
pub use time::{CalDate, Minute, MINUTES_PER_DAY};

//! Simulated time for the study interval.
//!
//! All timestamps in the workspace are [`Minute`]s — minutes elapsed since
//! the **epoch 2019-01-01 00:00**, the year the Astra study data was
//! collected. A minute is the natural resolution: BMC sensors sample once per
//! minute, and the kernel CE-polling cadence (seconds) is modeled inside the
//! log-buffer simulation without needing sub-minute global timestamps.
//!
//! [`CalDate`] provides just enough proleptic-Gregorian calendar to convert
//! between dates and day indices, bucket by month, and format RFC-3339-style
//! strings for log records. 2019 is not a leap year, but the conversions are
//! exact for arbitrary years anyway — the library should not break if someone
//! simulates a different interval.

use std::fmt;

/// Minutes in a day.
pub const MINUTES_PER_DAY: u64 = 24 * 60;

/// Cumulative days at the start of each month for a non-leap year.
const CUM_DAYS: [u64; 13] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365];

fn is_leap(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_year(year: i64) -> u64 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

fn days_in_month(year: i64, month: u32) -> u64 {
    let base = CUM_DAYS[month as usize] - CUM_DAYS[month as usize - 1];
    if month == 2 && is_leap(year) {
        base + 1
    } else {
        base
    }
}

/// A calendar date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CalDate {
    /// Four-digit year.
    pub year: i64,
    /// Month, 1–12.
    pub month: u32,
    /// Day of month, 1-based.
    pub day: u32,
}

impl CalDate {
    /// Construct a date, panicking on out-of-range components.
    pub fn new(year: i64, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && u64::from(day) <= days_in_month(year, month),
            "day {day} out of range for {year}-{month:02}"
        );
        CalDate { year, month, day }
    }

    /// Days elapsed since 2019-01-01 (may be negative for earlier dates).
    pub fn day_index(self) -> i64 {
        let mut days: i64 = 0;
        if self.year >= 2019 {
            for y in 2019..self.year {
                days += days_in_year(y) as i64;
            }
        } else {
            for y in self.year..2019 {
                days -= days_in_year(y) as i64;
            }
        }
        days += CUM_DAYS[self.month as usize - 1] as i64;
        if self.month > 2 && is_leap(self.year) {
            days += 1;
        }
        days + i64::from(self.day) - 1
    }

    /// Inverse of [`CalDate::day_index`].
    pub fn from_day_index(mut idx: i64) -> Self {
        let mut year = 2019i64;
        while idx < 0 {
            year -= 1;
            idx += days_in_year(year) as i64;
        }
        while idx >= days_in_year(year) as i64 {
            idx -= days_in_year(year) as i64;
            year += 1;
        }
        let mut month = 1u32;
        while u64::try_from(idx).unwrap() >= days_in_month(year, month) {
            idx -= days_in_month(year, month) as i64;
            month += 1;
        }
        CalDate {
            year,
            month,
            day: idx as u32 + 1,
        }
    }

    /// Midnight at the start of this date.
    pub fn midnight(self) -> Minute {
        Minute::from_i64(self.day_index() * MINUTES_PER_DAY as i64)
    }

    /// The date `n` days later.
    #[must_use]
    pub fn plus_days(self, n: i64) -> Self {
        Self::from_day_index(self.day_index() + n)
    }
}

impl fmt::Display for CalDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A timestamp: minutes since 2019-01-01 00:00.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Minute(pub i64);

impl Minute {
    /// Construct from a raw minute count.
    pub fn from_i64(v: i64) -> Self {
        Minute(v)
    }

    /// Raw minute count.
    pub fn value(self) -> i64 {
        self.0
    }

    /// The calendar date containing this minute.
    pub fn date(self) -> CalDate {
        CalDate::from_day_index(self.0.div_euclid(MINUTES_PER_DAY as i64))
    }

    /// Day index (days since 2019-01-01) of this minute.
    pub fn day_index(self) -> i64 {
        self.0.div_euclid(MINUTES_PER_DAY as i64)
    }

    /// Hour-of-day, 0–23.
    pub fn hour(self) -> u32 {
        (self.0.rem_euclid(MINUTES_PER_DAY as i64) / 60) as u32
    }

    /// Minute-of-hour, 0–59.
    pub fn minute_of_hour(self) -> u32 {
        (self.0.rem_euclid(60)) as u32
    }

    /// Minutes elapsed since midnight, 0–1439.
    pub fn minute_of_day(self) -> u32 {
        self.0.rem_euclid(MINUTES_PER_DAY as i64) as u32
    }

    /// Month bucket index counted from January 2019 (Jan 2019 = 0).
    pub fn month_index(self) -> i64 {
        let d = self.date();
        (d.year - 2019) * 12 + i64::from(d.month) - 1
    }

    /// Timestamp `n` minutes later.
    #[must_use]
    pub fn plus(self, n: i64) -> Self {
        Minute(self.0 + n)
    }

    /// Format as `YYYY-MM-DDTHH:MM:00` (seconds are always zero at this
    /// resolution; log formats that need seconds add them downstream).
    pub fn rfc3339(self) -> String {
        format!(
            "{}T{:02}:{:02}:00",
            self.date(),
            self.hour(),
            self.minute_of_hour()
        )
    }

    /// Parse the format produced by [`Minute::rfc3339`]. Seconds are
    /// accepted and truncated.
    pub fn parse_rfc3339(s: &str) -> Option<Self> {
        let (date_part, time_part) = s.split_once('T')?;
        let mut dit = date_part.splitn(3, '-');
        let year: i64 = dit.next()?.parse().ok()?;
        let month: u32 = dit.next()?.parse().ok()?;
        let day: u32 = dit.next()?.parse().ok()?;
        if !(1..=12).contains(&month) {
            return None;
        }
        if day < 1 || u64::from(day) > days_in_month(year, month) {
            return None;
        }
        let mut tit = time_part.splitn(3, ':');
        let hour: i64 = tit.next()?.parse().ok()?;
        let min: i64 = tit.next()?.parse().ok()?;
        if !(0..24).contains(&hour) || !(0..60).contains(&min) {
            return None;
        }
        let date = CalDate::new(year, month, day);
        Some(date.midnight().plus(hour * 60 + min))
    }
}

impl fmt::Display for Minute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rfc3339())
    }
}

/// Half-open interval of simulated time `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSpan {
    /// Inclusive start.
    pub start: Minute,
    /// Exclusive end.
    pub end: Minute,
}

impl TimeSpan {
    /// Construct; panics if `end < start`.
    pub fn new(start: Minute, end: Minute) -> Self {
        assert!(end >= start, "TimeSpan end before start");
        TimeSpan { start, end }
    }

    /// Span covering `[start_date, end_date)` midnight-to-midnight.
    pub fn dates(start: CalDate, end: CalDate) -> Self {
        Self::new(start.midnight(), end.midnight())
    }

    /// Number of minutes in the span.
    pub fn minutes(self) -> u64 {
        (self.end.0 - self.start.0) as u64
    }

    /// Number of whole days covered (rounded up).
    pub fn days(self) -> u64 {
        self.minutes().div_ceil(MINUTES_PER_DAY)
    }

    /// Whether the span contains the instant `t`.
    pub fn contains(self, t: Minute) -> bool {
        t >= self.start && t < self.end
    }

    /// Fraction of a year this span covers (365-day year convention, as the
    /// FIT-rate computation in the paper uses calendar-day arithmetic).
    pub fn years(self) -> f64 {
        self.minutes() as f64 / (365.0 * MINUTES_PER_DAY as f64)
    }
}

/// The paper's main failure-analysis interval: Jan 20 – Sep 14, 2019 (§2.3).
pub fn study_span() -> TimeSpan {
    TimeSpan::dates(CalDate::new(2019, 1, 20), CalDate::new(2019, 9, 14))
}

/// The environmental-data interval: May 20 – Sep 19, 2019 (§3.3, Fig 2).
pub fn sensor_span() -> TimeSpan {
    TimeSpan::dates(CalDate::new(2019, 5, 20), CalDate::new(2019, 9, 19))
}

/// The replacement-tracking interval: Feb 17 – Sep 17, 2019 (Table 1).
pub fn replacement_span() -> TimeSpan {
    TimeSpan::dates(CalDate::new(2019, 2, 17), CalDate::new(2019, 9, 17))
}

/// Date the Hardware Event Tracker firmware started recording (§3.5).
pub fn het_firmware_date() -> CalDate {
    CalDate::new(2019, 8, 23)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_index_roundtrip_over_years() {
        for idx in [-400i64, -1, 0, 1, 58, 59, 60, 364, 365, 366, 800] {
            let d = CalDate::from_day_index(idx);
            assert_eq!(d.day_index(), idx, "date {d}");
        }
    }

    #[test]
    fn known_dates() {
        assert_eq!(CalDate::new(2019, 1, 1).day_index(), 0);
        assert_eq!(CalDate::new(2019, 1, 20).day_index(), 19);
        assert_eq!(CalDate::new(2019, 2, 17).day_index(), 47);
        assert_eq!(CalDate::new(2019, 12, 31).day_index(), 364);
        assert_eq!(CalDate::new(2020, 1, 1).day_index(), 365);
        // 2020 is a leap year.
        assert_eq!(CalDate::new(2020, 3, 1).day_index(), 365 + 31 + 29);
    }

    #[test]
    fn study_interval_length() {
        // Jan 20 -> Sep 14 2019 is 237 days.
        assert_eq!(study_span().days(), 237);
        assert_eq!(replacement_span().days(), 212);
        assert_eq!(sensor_span().days(), 122);
    }

    #[test]
    fn minute_components() {
        let t = CalDate::new(2019, 5, 20).midnight().plus(13 * 60 + 45);
        assert_eq!(t.hour(), 13);
        assert_eq!(t.minute_of_hour(), 45);
        assert_eq!(t.date(), CalDate::new(2019, 5, 20));
        assert_eq!(t.rfc3339(), "2019-05-20T13:45:00");
    }

    #[test]
    fn rfc3339_roundtrip() {
        let t = CalDate::new(2019, 9, 13).midnight().plus(23 * 60 + 59);
        assert_eq!(Minute::parse_rfc3339(&t.rfc3339()), Some(t));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Minute::parse_rfc3339("not a date"), None);
        assert_eq!(Minute::parse_rfc3339("2019-13-01T00:00:00"), None);
        assert_eq!(Minute::parse_rfc3339("2019-02-30T00:00:00"), None);
        assert_eq!(Minute::parse_rfc3339("2019-02-28T25:00:00"), None);
    }

    #[test]
    fn month_index_buckets() {
        assert_eq!(CalDate::new(2019, 1, 31).midnight().month_index(), 0);
        assert_eq!(CalDate::new(2019, 2, 1).midnight().month_index(), 1);
        assert_eq!(CalDate::new(2019, 9, 14).midnight().month_index(), 8);
        assert_eq!(CalDate::new(2020, 1, 1).midnight().month_index(), 12);
    }

    #[test]
    fn timespan_contains_and_years() {
        let span = study_span();
        assert!(span.contains(span.start));
        assert!(!span.contains(span.end));
        assert!((span.years() - 237.0 / 365.0).abs() < 1e-12);
    }

    #[test]
    fn negative_minutes_floor_correctly() {
        let t = Minute::from_i64(-1);
        assert_eq!(t.date(), CalDate::new(2018, 12, 31));
        assert_eq!(t.hour(), 23);
        assert_eq!(t.minute_of_hour(), 59);
    }

    #[test]
    fn plus_days_crosses_month() {
        assert_eq!(
            CalDate::new(2019, 1, 31).plus_days(1),
            CalDate::new(2019, 2, 1)
        );
        assert_eq!(
            CalDate::new(2019, 3, 1).plus_days(-1),
            CalDate::new(2019, 2, 28)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_day_index_roundtrip(idx in -200_000i64..200_000) {
            let d = CalDate::from_day_index(idx);
            prop_assert_eq!(d.day_index(), idx);
            prop_assert!((1..=12).contains(&d.month));
            prop_assert!(d.day >= 1 && d.day <= 31);
        }

        #[test]
        fn prop_minute_rfc3339_roundtrip(m in -1_000_000i64..10_000_000) {
            let t = Minute::from_i64(m);
            prop_assert_eq!(Minute::parse_rfc3339(&t.rfc3339()), Some(t));
        }

        #[test]
        fn prop_plus_days_is_additive(idx in -1000i64..1000, a in -500i64..500, b in -500i64..500) {
            let d = CalDate::from_day_index(idx);
            prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
        }

        #[test]
        fn prop_month_index_monotone(a in 0i64..600_000, b in 0i64..600_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                Minute::from_i64(lo).month_index() <= Minute::from_i64(hi).month_index()
            );
        }
    }
}

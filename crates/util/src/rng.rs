//! Deterministic random number streams.
//!
//! Simulations in this workspace must be reproducible from a single `u64`
//! seed *and* independent of iteration order: simulating node 17 must yield
//! the same fault history whether nodes are processed sequentially,
//! rack-by-rack, or across eight worker threads. We get this by deriving an
//! independent stream per entity: `DetRng::for_stream(seed, key)` where `key`
//! hashes the entity's identity (node id, DIMM id, subsystem tag, …).
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the seeding
//! procedure recommended by the xoshiro authors. It is not cryptographic and
//! does not need to be.

/// SplitMix64 step: mixes `state` and returns the next 64-bit output.
///
/// Used both as a seeding PRNG and as a cheap hash for stream keys.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A key identifying an independent random stream.
///
/// Build one by folding entity identifiers into it; the construction is a
/// simple iterated SplitMix64 hash, which is plenty for decorrelating
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamKey(u64);

impl StreamKey {
    /// Root key for a named subsystem (e.g. `"faultsim"`, `"thermal"`).
    pub fn root(tag: &str) -> Self {
        let mut state = 0xA076_1D64_78BD_642F;
        for b in tag.as_bytes() {
            state ^= u64::from(*b);
            splitmix64(&mut state);
        }
        StreamKey(state)
    }

    /// Derive a child key by mixing in an integer component.
    #[must_use]
    pub fn with(self, component: u64) -> Self {
        let mut state = self.0 ^ component.rotate_left(17);
        splitmix64(&mut state);
        StreamKey(state)
    }

    /// The raw key value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a bare seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s }
    }

    /// Create the generator for stream `key` under global `seed`.
    ///
    /// Streams with distinct keys are statistically independent for our
    /// purposes, and a given `(seed, key)` pair always yields the same
    /// sequence.
    pub fn for_stream(seed: u64, key: StreamKey) -> Self {
        let mut state = seed ^ key.value().rotate_left(32);
        splitmix64(&mut state);
        Self::new(state)
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless method.
        let mut m = u128::from(self.next()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive. Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Pick an index according to (unnormalized, non-negative) `weights`.
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must have positive finite sum"
        );
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Next raw 32-bit output (upper half of the 64-bit state step).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// Fill `dest` with generator output.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 12345u64;
        let mut b = 12345u64;
        for _ in 0..16 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut r1 = DetRng::new(7);
        let mut r2 = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = DetRng::new(7);
        let mut r2 = DetRng::new(8);
        let same = (0..64).filter(|_| r1.next_u64() == r2.next_u64()).count();
        assert!(same < 2, "independent seeds should rarely collide");
    }

    #[test]
    fn streams_are_order_independent() {
        let key_a = StreamKey::root("test").with(1);
        let key_b = StreamKey::root("test").with(2);
        let mut a_first = DetRng::for_stream(42, key_a);
        let a1: Vec<u64> = (0..8).map(|_| a_first.next_u64()).collect();
        // Consuming stream B in between must not perturb stream A.
        let mut b = DetRng::for_stream(42, key_b);
        let _ = b.next_u64();
        let mut a_again = DetRng::for_stream(42, key_a);
        let a2: Vec<u64> = (0..8).map(|_| a_again.next_u64()).collect();
        assert_eq!(a1, a2);
    }

    #[test]
    fn stream_keys_distinguish_components() {
        let root = StreamKey::root("x");
        assert_ne!(root.with(0).value(), root.with(1).value());
        assert_ne!(StreamKey::root("x").value(), StreamKey::root("y").value());
        // with(a).with(b) != with(b).with(a): order matters.
        assert_ne!(root.with(1).with(2).value(), root.with(2).with(1).value());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = DetRng::new(3);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow +-5%.
            assert!((9_500..10_500).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = DetRng::new(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match r.range_inclusive(5, 8) {
                5 => saw_lo = true,
                8 => saw_hi = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut r = DetRng::new(5);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((2.7..3.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 bytes: any fixed output would be suspicious, just check it ran
        // over the tail chunk without panicking and produced some entropy.
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Scoped-thread data parallelism.
//!
//! The workloads here are embarrassingly parallel sweeps over nodes, DIMMs,
//! or log shards, so a chunked fork-join over `std::thread::scope` covers
//! every need without pulling in a work-stealing pool. Determinism is
//! preserved by construction: each result carries its input index and is
//! scattered back into position, so output is identical for any worker
//! count or scheduling order.
//!
//! Observability crosses the fork: every primitive captures the caller's
//! span path (`astra_obs::current_path`) and installs it in each worker
//! (`inherit_path`), so spans opened inside worker closures record under
//! the calling stage (`time.pipeline.parse/parse.ce/…`) instead of
//! rootless paths — and the sequential `workers <= 1` path runs on the
//! caller's thread, which nests identically. Aggregate `time.*` path
//! *names* are therefore the same at any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count override state: `UNSET` means "consult the `ASTRA_WORKERS`
/// environment variable once, then cache", `0` means "no override, use the
/// hardware parallelism", and any other value forces that worker count.
const OVERRIDE_UNSET: usize = usize::MAX;
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(OVERRIDE_UNSET);

/// Force (or clear, with `None`) the worker count used by every primitive
/// in this module. Takes precedence over the `ASTRA_WORKERS` environment
/// variable; intended for determinism tests that compare output across
/// worker counts within one process.
pub fn set_workers(n: Option<usize>) {
    WORKER_OVERRIDE.store(n.map_or(0, |n| n.max(1)), Ordering::SeqCst);
}

/// The active override, if any: the value set by [`set_workers`], else
/// `ASTRA_WORKERS` from the environment (read once per process).
fn worker_override() -> Option<usize> {
    let v = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if v != OVERRIDE_UNSET {
        return (v != 0).then_some(v);
    }
    let from_env = std::env::var("ASTRA_WORKERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(0);
    // Another thread may race the initialization; both read the same
    // environment, so whichever store wins is the same value.
    WORKER_OVERRIDE
        .compare_exchange(OVERRIDE_UNSET, from_env, Ordering::SeqCst, Ordering::SeqCst)
        .ok();
    (from_env != 0).then_some(from_env)
}

/// Number of worker threads to use: the available parallelism, capped so
/// tiny inputs do not pay thread-spawn overhead for nothing. Overridable
/// via [`set_workers`] or `ASTRA_WORKERS=N` in the environment (the
/// override is still capped at the item count).
pub fn worker_count(items: usize) -> usize {
    if items == 0 {
        return 1;
    }
    let hw = worker_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    hw.min(items).max(1)
}

/// Parallel map: applies `f` to every item, preserving input order.
///
/// Work is distributed dynamically with an atomic cursor over fixed-size
/// chunks so uneven per-item cost (some nodes have far more faults than
/// others) still balances. Each worker gathers whole contiguous chunks
/// tagged with their start index; the chunks are reassembled in index
/// order at the end, so no per-element bookkeeping (and no second
/// per-element pass) is needed.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let span_root = astra_obs::current_path();

    let mut gathered: Vec<(usize, Vec<U>)> = Vec::with_capacity(n / chunk + workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let _span_root = astra_obs::inherit_path(span_root.as_deref());
                let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    local.push((start, items[start..end].iter().map(&f).collect()));
                }
                local
            }));
        }
        for h in handles {
            gathered.extend(h.join().expect("par_map worker panicked"));
        }
    });

    // Chunks cover disjoint contiguous ranges; sorting the (few) chunk
    // descriptors by start index restores input order without touching
    // individual elements again.
    gathered.sort_unstable_by_key(|(start, _)| *start);
    let mut out: Vec<U> = Vec::with_capacity(n);
    for (start, chunk_out) in gathered {
        debug_assert_eq!(start, out.len(), "chunk {start} out of place");
        out.extend(chunk_out);
    }
    assert_eq!(out.len(), n, "par_map lost or duplicated a chunk");
    out
}

/// Parallel indexed map over `0..n`: like [`par_map`] but driven by index,
/// for when inputs are generated rather than stored.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

/// Parallel fold: folds each item into a per-worker accumulator with `map`,
/// then combines the per-worker partials with `merge`. `merge` must be
/// associative and commutative (aggregation into counters, histograms, …)
/// for the result to be deterministic.
pub fn par_fold<T, A, M, G>(items: &[T], identity: impl Fn() -> A + Sync, map: M, merge: G) -> A
where
    T: Sync,
    A: Send,
    M: Fn(&mut A, &T) + Sync,
    G: Fn(A, A) -> A,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        let mut acc = identity();
        for item in items {
            map(&mut acc, item);
        }
        return acc;
    }
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let span_root = astra_obs::current_path();
    let mut partials: Vec<A> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let _span_root = astra_obs::inherit_path(span_root.as_deref());
                let mut acc = identity();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for item in &items[start..end] {
                        map(&mut acc, item);
                    }
                }
                acc
            }));
        }
        for h in handles {
            partials.push(h.join().expect("par_fold worker panicked"));
        }
    });

    let mut iter = partials.into_iter();
    let first = iter.next().expect("at least one worker");
    iter.fold(first, merge)
}

/// Merge already-sorted runs into one sorted vector — the parallel
/// replacement for concatenating runs and re-sorting globally.
///
/// Each run must be sorted by `key`. Runs are merged pairwise in rounds
/// (`⌈log₂ k⌉` of them), with every pair of a round merging on its own
/// worker through [`par_map`]. Ties between runs take from the
/// lower-index run and ties within a run keep their order, so the output
/// is exactly the stable sort of the concatenated runs — bit-identical at
/// any worker count.
pub fn merge_sorted<T, K, F>(mut runs: Vec<Vec<T>>, key: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    runs.retain(|r| !r.is_empty());
    if runs.is_empty() {
        return Vec::new();
    }
    while runs.len() > 1 {
        let pairs: Vec<&[Vec<T>]> = runs.chunks(2).collect();
        runs = par_map(&pairs, |pair| match pair {
            [a, b] => merge_two(a, b, &key),
            [a] => a.clone(),
            _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
        });
    }
    runs.pop().expect("one run remains")
}

/// Stable two-way merge: ties take from `a` (the lower-index run).
fn merge_two<T, K, F>(a: &[T], b: &[T], key: &F) -> Vec<T>
where
    T: Clone,
    K: Ord,
    F: Fn(&T) -> K,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if key(&b[j]) < key(&a[i]) {
            out.push(b[j].clone());
            j += 1;
        } else {
            out.push(a[i].clone());
            i += 1;
        }
    }
    out.extend(a[i..].iter().cloned());
    out.extend(b[j..].iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let par = par_map(&items, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_empty() {
        let items: Vec<u64> = vec![];
        assert!(par_map(&items, |x| *x).is_empty());
    }

    #[test]
    fn par_map_single_item() {
        assert_eq!(par_map(&[41u64], |x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_uneven_cost_stays_ordered() {
        // Items near the front are much more expensive; dynamic chunking
        // must still scatter results back in order.
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            let spins = if x < 10 { 100_000 } else { 10 };
            for i in 0..spins {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn par_fold_counts() {
        let items: Vec<u64> = (0..100_000).collect();
        let total = par_fold(&items, || 0u64, |acc, x| *acc += *x, |a, b| a + b);
        assert_eq!(total, 100_000 * 99_999 / 2);
    }

    #[test]
    fn par_fold_histogram_merge() {
        let items: Vec<usize> = (0..50_000).map(|i| i % 10).collect();
        let hist = par_fold(
            &items,
            || vec![0u64; 10],
            |acc, &x| acc[x] += 1,
            |mut a, b| {
                for (slot, v) in a.iter_mut().zip(b) {
                    *slot += v;
                }
                a
            },
        );
        assert!(hist.iter().all(|&c| c == 5_000));
    }

    #[test]
    fn par_map_indexed_order() {
        let v = par_map_indexed(1000, |i| i * 2);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000_000) >= 1);
    }

    #[test]
    fn merge_sorted_matches_stable_sort() {
        // Runs with overlapping ranges and cross-run duplicate keys.
        let runs: Vec<Vec<(u64, u64)>> = (0..7)
            .map(|r| {
                let mut run: Vec<(u64, u64)> = (0..500).map(|i| ((i * (r + 3)) % 97, r)).collect();
                run.sort_by_key(|&(k, _)| k);
                run
            })
            .collect();
        let mut expected: Vec<(u64, u64)> = runs.iter().flatten().copied().collect();
        expected.sort_by_key(|&(k, _)| k);
        let merged = merge_sorted(runs, |&(k, _)| k);
        assert_eq!(merged, expected, "merge must equal the stable sort");
    }

    #[test]
    fn merge_sorted_edge_cases() {
        assert!(merge_sorted(Vec::<Vec<u64>>::new(), |&x| x).is_empty());
        assert!(merge_sorted(vec![vec![], Vec::<u64>::new()], |&x| x).is_empty());
        assert_eq!(merge_sorted(vec![vec![3u64, 5]], |&x| x), vec![3, 5]);
        assert_eq!(
            merge_sorted(vec![vec![2u64], vec![], vec![1], vec![3]], |&x| x),
            vec![1, 2, 3]
        );
    }

    /// Serializes the tests that mutate the process-global worker
    /// override, so they cannot race each other under the parallel test
    /// runner. (Tests that merely *run* the primitives are unaffected:
    /// they are correct at every worker count.)
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn merge_sorted_same_result_at_any_worker_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let runs: Vec<Vec<u64>> = (0..5)
            .map(|r| (0..200).map(|i| i * 2 + r).collect())
            .collect();
        set_workers(Some(1));
        let seq = merge_sorted(runs.clone(), |&x| x);
        set_workers(Some(4));
        let par = merge_sorted(runs, |&x| x);
        set_workers(None);
        assert_eq!(seq, par);
    }

    #[test]
    fn workers_inherit_the_callers_span_path() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let registry = astra_obs::Registry::new();
        let items: Vec<u64> = (0..256).collect();
        set_workers(Some(4));
        {
            let _stage = astra_obs::span_in(&registry, "stage");
            par_map(&items, |&x| {
                let _s = astra_obs::span_in(&registry, "work");
                x
            });
            par_fold(
                &items,
                || 0u64,
                |acc, &x| {
                    let _s = astra_obs::span_in(&registry, "fold");
                    *acc += x;
                },
                |a, b| a + b,
            );
        }
        set_workers(None);
        let snap = registry.snapshot();
        assert_eq!(
            snap.entries
                .iter()
                .filter(|(n, _)| n.starts_with("time."))
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["time.stage", "time.stage/fold", "time.stage/work"],
            "worker spans must nest under the caller's stage, never rootless"
        );
    }

    #[test]
    fn set_workers_overrides_and_clears() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_workers(Some(3));
        assert_eq!(worker_count(100), 3);
        assert_eq!(worker_count(2), 2, "override still capped by items");
        set_workers(None);
        assert!(worker_count(100) >= 1);
    }
}

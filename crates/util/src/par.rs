//! Scoped-thread data parallelism.
//!
//! The workloads here are embarrassingly parallel sweeps over nodes, DIMMs,
//! or log shards, so a chunked fork-join over `std::thread::scope` covers
//! every need without pulling in a work-stealing pool. Determinism is
//! preserved by construction: each result carries its input index and is
//! scattered back into position, so output is identical for any worker
//! count or scheduling order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the available parallelism, capped so
/// tiny inputs do not pay thread-spawn overhead for nothing.
pub fn worker_count(items: usize) -> usize {
    if items == 0 {
        return 1;
    }
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(items).max(1)
}

/// Parallel map: applies `f` to every item, preserving input order.
///
/// Work is distributed dynamically with an atomic cursor over fixed-size
/// chunks so uneven per-item cost (some nodes have far more faults than
/// others) still balances. Each worker gathers `(index, value)` pairs
/// locally; the results are scattered back into input order at the end.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);

    let mut gathered: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    local.reserve(end - start);
                    for (i, item) in items[start..end].iter().enumerate() {
                        local.push((start + i, f(item)));
                    }
                }
                local
            }));
        }
        for h in handles {
            gathered.push(h.join().expect("par_map worker panicked"));
        }
    });

    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for local in gathered {
        for (i, v) in local {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("par_map left an index unfilled"))
        .collect()
}

/// Parallel indexed map over `0..n`: like [`par_map`] but driven by index,
/// for when inputs are generated rather than stored.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

/// Parallel fold: folds each item into a per-worker accumulator with `map`,
/// then combines the per-worker partials with `merge`. `merge` must be
/// associative and commutative (aggregation into counters, histograms, …)
/// for the result to be deterministic.
pub fn par_fold<T, A, M, G>(items: &[T], identity: impl Fn() -> A + Sync, map: M, merge: G) -> A
where
    T: Sync,
    A: Send,
    M: Fn(&mut A, &T) + Sync,
    G: Fn(A, A) -> A,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        let mut acc = identity();
        for item in items {
            map(&mut acc, item);
        }
        return acc;
    }
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut partials: Vec<A> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut acc = identity();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for item in &items[start..end] {
                        map(&mut acc, item);
                    }
                }
                acc
            }));
        }
        for h in handles {
            partials.push(h.join().expect("par_fold worker panicked"));
        }
    });

    let mut iter = partials.into_iter();
    let first = iter.next().expect("at least one worker");
    iter.fold(first, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let par = par_map(&items, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_empty() {
        let items: Vec<u64> = vec![];
        assert!(par_map(&items, |x| *x).is_empty());
    }

    #[test]
    fn par_map_single_item() {
        assert_eq!(par_map(&[41u64], |x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_uneven_cost_stays_ordered() {
        // Items near the front are much more expensive; dynamic chunking
        // must still scatter results back in order.
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            let spins = if x < 10 { 100_000 } else { 10 };
            for i in 0..spins {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn par_fold_counts() {
        let items: Vec<u64> = (0..100_000).collect();
        let total = par_fold(&items, || 0u64, |acc, x| *acc += *x, |a, b| a + b);
        assert_eq!(total, 100_000 * 99_999 / 2);
    }

    #[test]
    fn par_fold_histogram_merge() {
        let items: Vec<usize> = (0..50_000).map(|i| i % 10).collect();
        let hist = par_fold(
            &items,
            || vec![0u64; 10],
            |acc, &x| acc[x] += 1,
            |mut a, b| {
                for (slot, v) in a.iter_mut().zip(b) {
                    *slot += v;
                }
                a
            },
        );
        assert!(hist.iter().all(|&c| c == 5_000));
    }

    #[test]
    fn par_map_indexed_order() {
        let v = par_map_indexed(1000, |i| i * 2);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000_000) >= 1);
    }
}

//! Probability distributions used by the simulators.
//!
//! Each sampler takes a [`DetRng`] explicitly — there is no global RNG state
//! anywhere in the workspace. All samplers are implemented from first
//! principles (inverse-transform, Box–Muller, Knuth/normal-approximation
//! Poisson) and validated against their analytic moments in the test suite.

use crate::rng::DetRng;

/// Standard normal sample via the Box–Muller transform.
///
/// Uses only one of the two generated variates; the simulators sample in
/// irregular patterns where caching the spare would complicate stream
/// reproducibility for no measurable gain.
#[inline]
pub fn std_normal(rng: &mut DetRng) -> f64 {
    let u1 = rng.f64_open();
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
#[inline]
pub fn normal(rng: &mut DetRng, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0);
    mean + sd * std_normal(rng)
}

/// Normal sample truncated (by resampling) to `[lo, hi]`.
///
/// Falls back to clamping after 64 rejections so pathological parameter
/// choices cannot hang a simulation.
pub fn truncated_normal(rng: &mut DetRng, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    for _ in 0..64 {
        let x = normal(rng, mean, sd);
        if x >= lo && x <= hi {
            return x;
        }
    }
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Lognormal sample: `exp(N(mu, sigma))`.
#[inline]
pub fn lognormal(rng: &mut DetRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential sample with the given rate (`lambda`), mean `1/lambda`.
#[inline]
pub fn exponential(rng: &mut DetRng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    -rng.f64_open().ln() / rate
}

/// Poisson sample with the given mean.
///
/// Knuth's product method for small means; for `mean > 32` a rounded normal
/// approximation (accurate to well under the noise floor of anything we
/// aggregate) keeps sampling O(1).
pub fn poisson(rng: &mut DetRng, mean: f64) -> u64 {
    debug_assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0;
    }
    if mean > 32.0 {
        let x = normal(rng, mean, mean.sqrt());
        return x.round().max(0.0) as u64;
    }
    let threshold = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.f64_open();
        if p <= threshold {
            return k;
        }
        k += 1;
    }
}

/// Weibull sample with `scale` (lambda) and `shape` (k).
///
/// `shape < 1` gives a decreasing hazard — the infant-mortality regime the
/// replacement simulator relies on.
#[inline]
pub fn weibull(rng: &mut DetRng, scale: f64, shape: f64) -> f64 {
    debug_assert!(scale > 0.0 && shape > 0.0);
    scale * (-rng.f64_open().ln()).powf(1.0 / shape)
}

/// Weibull hazard rate `h(t) = (k/λ) (t/λ)^(k-1)` at time `t >= 0`.
pub fn weibull_hazard(t: f64, scale: f64, shape: f64) -> f64 {
    debug_assert!(scale > 0.0 && shape > 0.0);
    if t <= 0.0 {
        // h(0) diverges for shape < 1; evaluate just above zero instead.
        return weibull_hazard(1e-9, scale, shape);
    }
    (shape / scale) * (t / scale).powf(shape - 1.0)
}

/// Discrete power-law sample on `{xmin, xmin+1, ...}` with exponent `alpha`.
///
/// Uses the continuous inverse-transform approximation from Clauset,
/// Shalizi & Newman (2009), Appendix D: round a continuous power-law sample
/// drawn from `[xmin - 1/2, ∞)`. For `alpha` around 2–3 this approximates the
/// discrete distribution closely, which is all the simulators need (the
/// *fitting* side in `astra-stats` uses the exact discrete MLE).
pub fn power_law(rng: &mut DetRng, xmin: u64, alpha: f64) -> u64 {
    debug_assert!(xmin >= 1 && alpha > 1.0);
    let x = (xmin as f64 - 0.5) * rng.f64_open().powf(-1.0 / (alpha - 1.0));
    // +0.5 then floor == round-half-up of the continuous variate.
    (x + 0.5).floor() as u64
}

/// Discrete power-law sample truncated to `[xmin, xmax]` (by resampling).
pub fn power_law_truncated(rng: &mut DetRng, xmin: u64, xmax: u64, alpha: f64) -> u64 {
    debug_assert!(xmin <= xmax);
    for _ in 0..256 {
        let x = power_law(rng, xmin, alpha);
        if x <= xmax {
            return x;
        }
    }
    xmax
}

/// Pareto (continuous power-law) sample with minimum `xmin` and exponent
/// `alpha` (density ∝ x^-(alpha)).
#[inline]
pub fn pareto(rng: &mut DetRng, xmin: f64, alpha: f64) -> f64 {
    debug_assert!(xmin > 0.0 && alpha > 1.0);
    xmin * rng.f64_open().powf(-1.0 / (alpha - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_sd(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var.sqrt())
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(11);
        let samples: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let (m, s) = mean_sd(&samples);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((s - 2.0).abs() < 0.05, "sd {s}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = DetRng::new(12);
        for _ in 0..10_000 {
            let x = truncated_normal(&mut rng, 0.0, 5.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::new(13);
        let samples: Vec<f64> = (0..50_000).map(|_| exponential(&mut rng, 0.5)).collect();
        let (m, _) = mean_sd(&samples);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = DetRng::new(14);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 2.5)).sum();
        let m = total as f64 / n as f64;
        assert!((m - 2.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_path() {
        let mut rng = DetRng::new(15);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 100.0)).sum();
        let m = total as f64 / n as f64;
        assert!((m - 100.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = DetRng::new(16);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn weibull_mean_shape_one_is_exponential() {
        // shape == 1 reduces to exponential with mean == scale.
        let mut rng = DetRng::new(17);
        let samples: Vec<f64> = (0..50_000).map(|_| weibull(&mut rng, 4.0, 1.0)).collect();
        let (m, _) = mean_sd(&samples);
        assert!((m - 4.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn weibull_hazard_decreases_for_shape_below_one() {
        let h1 = weibull_hazard(1.0, 10.0, 0.5);
        let h10 = weibull_hazard(10.0, 10.0, 0.5);
        let h100 = weibull_hazard(100.0, 10.0, 0.5);
        assert!(
            h1 > h10 && h10 > h100,
            "hazard must decrease: {h1} {h10} {h100}"
        );
    }

    #[test]
    fn weibull_hazard_at_zero_is_finite() {
        assert!(weibull_hazard(0.0, 10.0, 0.5).is_finite());
    }

    #[test]
    fn power_law_respects_xmin() {
        let mut rng = DetRng::new(18);
        for _ in 0..10_000 {
            assert!(power_law(&mut rng, 3, 2.5) >= 3);
        }
    }

    #[test]
    fn power_law_tail_heaviness_orders_by_alpha() {
        // Smaller alpha => heavier tail => larger high quantiles.
        let mut rng = DetRng::new(19);
        let n = 30_000;
        let mut a: Vec<u64> = (0..n).map(|_| power_law(&mut rng, 1, 1.8)).collect();
        let mut b: Vec<u64> = (0..n).map(|_| power_law(&mut rng, 1, 3.0)).collect();
        a.sort_unstable();
        b.sort_unstable();
        let q99a = a[n * 99 / 100];
        let q99b = b[n * 99 / 100];
        assert!(q99a > q99b, "q99 {q99a} vs {q99b}");
    }

    #[test]
    fn power_law_truncated_obeys_cap() {
        let mut rng = DetRng::new(20);
        for _ in 0..10_000 {
            let x = power_law_truncated(&mut rng, 1, 50, 1.5);
            assert!((1..=50).contains(&x));
        }
    }

    #[test]
    fn pareto_min() {
        let mut rng = DetRng::new(21);
        for _ in 0..10_000 {
            assert!(pareto(&mut rng, 2.0, 2.5) >= 2.0);
        }
    }

    #[test]
    fn lognormal_median() {
        let mut rng = DetRng::new(22);
        let mut samples: Vec<f64> = (0..30_001)
            .map(|_| lognormal(&mut rng, 1.0, 0.75))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[15_000];
        // Median of lognormal is e^mu.
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }
}

//! Varint / zigzag / delta column codecs.
//!
//! Shared by the binary log format (`astra-logs::binfmt`) and the binary
//! stream-checkpoint encoding: LEB128-style unsigned varints, zigzag
//! mapping for signed values, and delta encoding for sorted-ish integer
//! columns (timestamps, day indices) where consecutive differences are
//! small and compress to one or two bytes each.
//!
//! All readers take `(&[u8], &mut usize)` cursors and return `Option` —
//! `None` means the buffer ended mid-value or a varint overran 64 bits.
//! Decoders never panic on malformed input; the caller (a CRC-verified
//! block reader) treats `None` as corruption.

/// Append `v` as an LEB128 unsigned varint (1–10 bytes).
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read an LEB128 unsigned varint at `*pos`, advancing the cursor.
///
/// Returns `None` on a truncated buffer or a varint longer than ten
/// bytes (i.e. one that does not fit in 64 bits).
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None; // would overflow 64 bits
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zigzag-map a signed value to unsigned so small magnitudes (of either
/// sign) get short varints: 0, -1, 1, -2, ... → 0, 1, 2, 3, ...
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` as a zigzag varint.
pub fn write_ivarint(out: &mut Vec<u8>, v: i64) {
    write_uvarint(out, zigzag(v));
}

/// Read a zigzag varint at `*pos`.
pub fn read_ivarint(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_uvarint(buf, pos).map(unzigzag)
}

/// Delta-encode a column of signed values: each element is written as a
/// zigzag varint of its difference from the previous element (the first
/// from `base`). Sorted columns of nearby values collapse to ~1 byte per
/// element; out-of-order values still round-trip via negative deltas.
pub fn write_deltas(out: &mut Vec<u8>, base: i64, values: &[i64]) {
    let mut prev = base;
    for &v in values {
        write_ivarint(out, v.wrapping_sub(prev));
        prev = v;
    }
}

/// Decode `n` delta-encoded values written by [`write_deltas`] with the
/// same `base`. Returns `None` on truncation or varint overflow.
pub fn read_deltas(buf: &[u8], pos: &mut usize, base: i64, n: usize) -> Option<Vec<i64>> {
    let mut out = Vec::with_capacity(n);
    let mut prev = base;
    for _ in 0..n {
        prev = prev.wrapping_add(read_ivarint(buf, pos)?);
        out.push(prev);
    }
    Some(out)
}

/// Append a little-endian `u16`.
pub fn write_u16_le(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn write_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn write_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u16` at `*pos`.
pub fn read_u16_le(buf: &[u8], pos: &mut usize) -> Option<u16> {
    let b = buf.get(*pos..*pos + 2)?;
    *pos += 2;
    Some(u16::from_le_bytes([b[0], b[1]]))
}

/// Read a little-endian `u32` at `*pos`.
pub fn read_u32_le(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Read a little-endian `u64` at `*pos`.
pub fn read_u64_le(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Append a presence bitmap for an `Option` column: bit `i` of byte
/// `i / 8` is set when element `i` is `Some`. `ceil(n / 8)` bytes.
pub fn write_presence<T>(out: &mut Vec<u8>, values: &[Option<T>]) {
    let mut byte = 0u8;
    for (i, v) in values.iter().enumerate() {
        if v.is_some() {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !values.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// Read a presence bitmap for `n` elements written by [`write_presence`],
/// returning one `bool` per element.
pub fn read_presence(buf: &[u8], pos: &mut usize, n: usize) -> Option<Vec<bool>> {
    let bytes = n.div_ceil(8);
    let bits = buf.get(*pos..*pos + bytes)?;
    *pos += bytes;
    Some((0..n).map(|i| bits[i / 8] & (1 << (i % 8)) != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uvarint_roundtrip(v: u64) -> usize {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), Some(v), "value {v:#x}");
        assert_eq!(pos, buf.len(), "cursor must land at end for {v:#x}");
        buf.len()
    }

    #[test]
    fn uvarint_boundaries() {
        assert_eq!(uvarint_roundtrip(0), 1);
        assert_eq!(uvarint_roundtrip(0x7F), 1);
        assert_eq!(uvarint_roundtrip(0x80), 2);
        assert_eq!(uvarint_roundtrip(0x3FFF), 2);
        assert_eq!(uvarint_roundtrip(0x4000), 3);
        assert_eq!(uvarint_roundtrip(u64::from(u32::MAX)), 5);
        assert_eq!(uvarint_roundtrip(u64::MAX - 1), 10);
        assert_eq!(uvarint_roundtrip(u64::MAX), 10);
    }

    #[test]
    fn uvarint_rejects_truncation() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf[..cut], &mut pos), None, "cut {cut}");
        }
    }

    #[test]
    fn uvarint_rejects_overflow() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), None);
        // Ten bytes whose top byte carries more than the single
        // remaining bit also overflow.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_boundaries() {
        for v in [0i64, -1, 1, -2, 2, i64::MAX, i64::MIN, i64::MIN + 1] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
    }

    #[test]
    fn ivarint_roundtrip_extremes() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_ivarint(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn deltas_empty_column() {
        let mut buf = Vec::new();
        write_deltas(&mut buf, 0, &[]);
        assert!(buf.is_empty(), "empty column writes no bytes");
        let mut pos = 0;
        assert_eq!(read_deltas(&buf, &mut pos, 0, 0), Some(vec![]));
        assert_eq!(pos, 0);
    }

    #[test]
    fn deltas_negative_and_positive() {
        let values = [100i64, 90, 90, 150, -40, i64::MAX, i64::MIN, 0];
        let mut buf = Vec::new();
        write_deltas(&mut buf, 0, &values);
        let mut pos = 0;
        assert_eq!(
            read_deltas(&buf, &mut pos, 0, values.len()),
            Some(values.to_vec())
        );
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn deltas_sorted_column_is_one_byte_per_element() {
        // Minute-resolution timestamps a few minutes apart: the whole
        // point of delta+varint is that these cost ~1 byte each.
        let values: Vec<i64> = (0..1000).map(|i| 500_000 + i * 3).collect();
        let mut buf = Vec::new();
        write_deltas(&mut buf, values[0], &values);
        // First delta is 0 (base = first value), rest are 3.
        assert_eq!(buf.len(), values.len());
        let mut pos = 0;
        assert_eq!(
            read_deltas(&buf, &mut pos, values[0], values.len()),
            Some(values)
        );
    }

    #[test]
    fn deltas_reject_truncation() {
        let mut buf = Vec::new();
        write_deltas(&mut buf, 0, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(read_deltas(&buf[..buf.len() - 1], &mut pos, 0, 3), None);
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut buf = Vec::new();
        write_u16_le(&mut buf, u16::MAX);
        write_u32_le(&mut buf, 0xDEAD_BEEF);
        write_u64_le(&mut buf, u64::MAX - 7);
        let mut pos = 0;
        assert_eq!(read_u16_le(&buf, &mut pos), Some(u16::MAX));
        assert_eq!(read_u32_le(&buf, &mut pos), Some(0xDEAD_BEEF));
        assert_eq!(read_u64_le(&buf, &mut pos), Some(u64::MAX - 7));
        assert_eq!(pos, buf.len());
        assert_eq!(read_u16_le(&buf, &mut pos), None, "reads past end fail");
    }

    #[test]
    fn presence_bitmap_roundtrip() {
        for n in [0usize, 1, 7, 8, 9, 16, 63] {
            let values: Vec<Option<u8>> = (0..n).map(|i| (i % 3 == 0).then_some(i as u8)).collect();
            let mut buf = Vec::new();
            write_presence(&mut buf, &values);
            assert_eq!(buf.len(), n.div_ceil(8));
            let mut pos = 0;
            let bits = read_presence(&buf, &mut pos, n).unwrap();
            assert_eq!(pos, buf.len());
            let expect: Vec<bool> = values.iter().map(|v| v.is_some()).collect();
            assert_eq!(bits, expect, "n = {n}");
        }
    }
}

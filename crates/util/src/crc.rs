//! CRC-32 (IEEE 802.3) checksums.
//!
//! Used by the streaming-analysis checkpoint format to guard each section
//! against torn writes: a crash mid-write leaves a section whose stored
//! CRC no longer matches its content, which the salvage path detects
//! without having to interpret the section. The polynomial is the
//! ubiquitous reflected `0xEDB88320` so checkpoints can be checked with
//! standard tools (`python -c 'import zlib; ...'`, `cksum -o 3`, …).

/// Lazily built 256-entry lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, reflected, init/final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[usize::from((crc as u8) ^ b)];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"checkpoint section body");
        let b = crc32(b"checkpoint section bodz");
        assert_ne!(a, b);
    }
}

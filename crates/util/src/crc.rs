//! CRC-32 (IEEE 802.3) checksums.
//!
//! Used by the streaming-analysis checkpoint format to guard each section
//! against torn writes: a crash mid-write leaves a section whose stored
//! CRC no longer matches its content, which the salvage path detects
//! without having to interpret the section. The polynomial is the
//! ubiquitous reflected `0xEDB88320` so checkpoints can be checked with
//! standard tools (`python -c 'import zlib; ...'`, `cksum -o 3`, …).

/// Lazily built slicing-by-8 lookup tables for the reflected polynomial.
/// Table 0 is the classic byte-at-a-time table; table `k` advances a byte
/// through `k` further zero bytes, letting the hot loop fold eight input
/// bytes per iteration instead of one.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for (i, slot) in tables[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        let t0 = tables[0];
        for k in 1..8 {
            let prev = tables[k - 1];
            for (slot, &p) in tables[k].iter_mut().zip(prev.iter()) {
                *slot = (p >> 8) ^ t0[usize::from(p as u8)];
            }
        }
        tables
    })
}

/// CRC-32 of `bytes` (IEEE, reflected, init/final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][usize::from(lo as u8)]
            ^ t[6][usize::from((lo >> 8) as u8)]
            ^ t[5][usize::from((lo >> 16) as u8)]
            ^ t[4][usize::from((lo >> 24) as u8)]
            ^ t[3][usize::from(hi as u8)]
            ^ t[2][usize::from((hi >> 8) as u8)]
            ^ t[1][usize::from((hi >> 16) as u8)]
            ^ t[0][usize::from((hi >> 24) as u8)];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][usize::from((crc as u8) ^ b)];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_fold_matches_bytewise_reference() {
        // Byte-at-a-time reference against the slicing-by-8 hot loop, at
        // lengths that hit every chunk/remainder split.
        let data: Vec<u8> = (0u32..4096).map(|i| (i * 31 + 7) as u8).collect();
        for len in (0..64).chain([1000, 4095, 4096]) {
            let bytes = &data[..len];
            let t = tables();
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ t[0][usize::from((crc as u8) ^ b)];
            }
            assert_eq!(crc32(bytes), crc ^ 0xFFFF_FFFF, "len {len}");
        }
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"checkpoint section body");
        let b = crc32(b"checkpoint section bodz");
        assert_ne!(a, b);
    }
}

//! Shared harness for the figure/table regeneration binaries and benches.
//!
//! Every binary accepts the same arguments:
//!
//! ```text
//! cargo run --release -p astra-bench --bin fig5 -- [racks] [seed]
//! cargo run --release -p astra-bench --bin fig5 -- full        # 36 racks
//! ```
//!
//! Default is a 12-rack (864-node) machine — one third of Astra — which
//! regenerates every figure's shape in seconds. `full` runs the whole
//! 2,592-node machine, whose totals are the ones recorded against the
//! paper in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use astra_core::pipeline::{Analysis, Dataset};

/// Parsed common CLI arguments.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Rack count (36 = full Astra).
    pub racks: u32,
    /// Master seed.
    pub seed: u64,
}

impl Cli {
    /// Parse `[racks|"full"] [seed]` from `std::env::args`.
    pub fn parse() -> Cli {
        let mut args = std::env::args().skip(1);
        let racks = match args.next().as_deref() {
            Some("full") => 36,
            Some(s) => s.parse().unwrap_or(12),
            None => 12,
        };
        let seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
        Cli { racks, seed }
    }
}

/// Generate the dataset and run the core analysis, with timing to stderr.
pub fn prepare(cli: Cli) -> (Dataset, Analysis) {
    let t0 = std::time::Instant::now();
    let ds = Dataset::generate(cli.racks, cli.seed);
    eprintln!(
        "[astra-bench] simulated {} nodes, {} CEs in {:?}",
        ds.system.node_count(),
        ds.sim.ce_log.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
    eprintln!(
        "[astra-bench] coalesced into {} faults in {:?}",
        analysis.total_faults(),
        t1.elapsed()
    );
    (ds, analysis)
}

/// Scale factor from this machine size to full Astra, for comparing
/// totals against the paper.
pub fn full_scale_factor(racks: u32) -> f64 {
    36.0 / f64::from(racks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor() {
        assert_eq!(full_scale_factor(36), 1.0);
        assert_eq!(full_scale_factor(12), 3.0);
    }

    #[test]
    fn prepare_runs_at_tiny_scale() {
        let (ds, analysis) = prepare(Cli { racks: 1, seed: 7 });
        assert_eq!(ds.system.racks, 1);
        assert!(analysis.total_faults() > 0);
    }
}

//! Shared harness for the figure/table regeneration binaries and benches.
//!
//! Every binary accepts the same arguments:
//!
//! ```text
//! cargo run --release -p astra-bench --bin fig5 -- [racks] [seed]
//! cargo run --release -p astra-bench --bin fig5 -- full        # 36 racks
//! ```
//!
//! Default is a 12-rack (864-node) machine — one third of Astra — which
//! regenerates every figure's shape in seconds. `full` runs the whole
//! 2,592-node machine, whose totals are the ones recorded against the
//! paper in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use astra_core::pipeline::{Analysis, Dataset};

/// Parsed common CLI arguments.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Rack count (36 = full Astra).
    pub racks: u32,
    /// Master seed.
    pub seed: u64,
}

impl Cli {
    /// Parse `[racks|"full"] [seed]` from `std::env::args`.
    pub fn parse() -> Cli {
        let mut args = std::env::args().skip(1);
        let racks = match args.next().as_deref() {
            Some("full") => 36,
            Some(s) => s.parse().unwrap_or(12),
            None => 12,
        };
        let seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
        Cli { racks, seed }
    }
}

/// Generate the dataset and run the core analysis, with timing to stderr.
pub fn prepare(cli: Cli) -> (Dataset, Analysis) {
    let t0 = std::time::Instant::now();
    let ds = Dataset::generate(cli.racks, cli.seed);
    eprintln!(
        "[astra-bench] simulated {} nodes, {} CEs in {:?}",
        ds.system.node_count(),
        ds.sim.ce_log.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
    eprintln!(
        "[astra-bench] coalesced into {} faults in {:?}",
        analysis.total_faults(),
        t1.elapsed()
    );
    (ds, analysis)
}

/// Scale factor from this machine size to full Astra, for comparing
/// totals against the paper.
pub fn full_scale_factor(racks: u32) -> f64 {
    36.0 / f64::from(racks)
}

/// Minimal JSON handling for the `bench pipeline` driver: syntax
/// validation of the emitted report and flat number extraction from the
/// checked-in floor file. The workspace is offline and zero-dep by
/// design, so there is no serde — this covers exactly what the bench
/// smoke check needs.
pub mod json {
    /// Check that `text` is one well-formed JSON value (the whole input).
    ///
    /// Accepts the full JSON grammar; reports the byte offset of the
    /// first violation. Used by the CI `bench-smoke` job to fail on a
    /// malformed `BENCH_pipeline.json`.
    pub fn validate(text: &str) -> Result<(), String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(())
    }

    /// Extract the number that follows `"key":` (first occurrence).
    ///
    /// Only suitable for flat documents whose keys are unique — the floor
    /// file format — not a general JSON path query.
    pub fn number_field(text: &str, key: &str) -> Option<f64> {
        let needle = format!("\"{key}\"");
        let after = text.find(&needle)? + needle.len();
        let rest = text[after..].trim_start().strip_prefix(':')?.trim_start();
        let end = rest
            .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    const MAX_DEPTH: usize = 64;

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
        }
    }

    fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {pos}",
                pos = *pos
            ));
        }
        match bytes.get(*pos) {
            Some(b'{') => composite(bytes, pos, depth, b'}'),
            Some(b'[') => composite(bytes, pos, depth, b']'),
            Some(b'"') => string(bytes, pos),
            Some(b't') => expect(bytes, pos, "true"),
            Some(b'f') => expect(bytes, pos, "false"),
            Some(b'n') => expect(bytes, pos, "null"),
            Some(b'-' | b'0'..=b'9') => number(bytes, pos),
            Some(c) => Err(format!(
                "unexpected byte {c:#04x} at byte {pos}",
                pos = *pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    /// Shared object/array body: `{` with `"key": value` members or `[`
    /// with bare values, distinguished by the closing delimiter.
    fn composite(bytes: &[u8], pos: &mut usize, depth: usize, close: u8) -> Result<(), String> {
        *pos += 1; // opening delimiter, dispatched on by the caller
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&close) {
            *pos += 1;
            return Ok(());
        }
        loop {
            if close == b'}' {
                string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                skip_ws(bytes, pos);
            }
            value(bytes, pos, depth + 1)?;
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => {
                    *pos += 1;
                    skip_ws(bytes, pos);
                }
                Some(c) if *c == close => {
                    *pos += 1;
                    return Ok(());
                }
                _ => {
                    return Err(format!(
                        "expected `,` or `{}` at byte {pos}",
                        close as char,
                        pos = *pos
                    ))
                }
            }
        }
    }

    fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(bytes, pos, "\"")?;
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            *pos += 1;
                            for _ in 0..4 {
                                match bytes.get(*pos) {
                                    Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                    _ => {
                                        return Err(format!(
                                            "bad \\u escape at byte {pos}",
                                            pos = *pos
                                        ))
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                    }
                }
                Some(c) if *c >= 0x20 => *pos += 1,
                Some(_) => return Err(format!("control byte in string at byte {pos}", pos = *pos)),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        match bytes.get(*pos) {
            Some(b'0') => *pos += 1,
            Some(b'1'..=b'9') => digits(bytes, pos),
            _ => return Err(format!("bad number at byte {start}")),
        }
        if bytes.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                return Err(format!("bad number at byte {start}"));
            }
            digits(bytes, pos);
        }
        if let Some(b'e' | b'E') = bytes.get(*pos) {
            *pos += 1;
            if let Some(b'+' | b'-') = bytes.get(*pos) {
                *pos += 1;
            }
            if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                return Err(format!("bad number at byte {start}"));
            }
            digits(bytes, pos);
        }
        Ok(())
    }

    fn digits(bytes: &[u8], pos: &mut usize) {
        while let Some(b'0'..=b'9') = bytes.get(*pos) {
            *pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor() {
        assert_eq!(full_scale_factor(36), 1.0);
        assert_eq!(full_scale_factor(12), 3.0);
    }

    #[test]
    fn prepare_runs_at_tiny_scale() {
        let (ds, analysis) = prepare(Cli { racks: 1, seed: 7 });
        assert_eq!(ds.system.racks, 1);
        assert!(analysis.total_faults() > 0);
    }

    #[test]
    fn json_validate_accepts_well_formed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            r#""a \"quoted\" é string""#,
            r#"{"a": [1, 2.5, {"b": true}], "c": null}"#,
            "  { \"k\" : [ ] }\n",
        ] {
            assert!(json::validate(ok).is_ok(), "rejected {ok:?}");
        }
    }

    #[test]
    fn json_validate_rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{'a': 1}",
            "{\"a\": 01}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "{\"a\": +1}",
        ] {
            assert!(json::validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn json_number_field_extracts_flat_keys() {
        let text = r#"{"stages": {"simulate": 1.25, "parse": 0.5}, "racks": 2}"#;
        assert_eq!(json::number_field(text, "simulate"), Some(1.25));
        assert_eq!(json::number_field(text, "parse"), Some(0.5));
        assert_eq!(json::number_field(text, "racks"), Some(2.0));
        assert_eq!(json::number_field(text, "absent"), None);
    }
}

//! Regenerate Fig 5: per-node fault counts and CE concentration.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig5;

fn main() {
    let cli = Cli::parse();
    let (_, analysis) = prepare(cli);
    let fig = fig5::compute(&analysis);
    print!("{}", fig.render());
    println!("(paper: >60% zero-CE nodes; top 8 >50%; top 2% ~90%)");
}

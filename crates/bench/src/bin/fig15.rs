//! Regenerate Fig 15: HET events and the FIT computation.

use astra_bench::Cli;
use astra_core::experiments::fig15;
use astra_core::pipeline::Dataset;
use astra_util::time::{het_firmware_date, TimeSpan};
use astra_util::CalDate;

fn main() {
    let cli = Cli::parse();
    let ds = Dataset::generate(cli.racks, cli.seed);
    let window = TimeSpan::dates(het_firmware_date(), CalDate::new(2019, 9, 14));
    let fig = fig15::compute(&ds.sim.het_log, window, ds.system.dimm_count());
    print!("{}", fig.render());
    println!("(paper: 0.00948 DUE/DIMM/yr, FIT ~ 1081; best compared at 'full' scale)");
}

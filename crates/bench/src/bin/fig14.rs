//! Regenerate Fig 14: power (utilization proxy) deciles, hot/cold split.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig13_14;
use astra_core::tempcorr::TempCorrConfig;
use astra_util::time::sensor_span;

fn main() {
    let cli = Cli::parse();
    let (ds, analysis) = prepare(cli);
    let config = TempCorrConfig::default();
    let fig = fig13_14::compute_fig14(&analysis, &ds.telemetry, sensor_span(), &config);
    print!("{}", fig.render());
    println!(
        "no strong power trend: {}; hot series shifted right: {}",
        fig.no_strong_power_trend(0.55),
        fig.hot_series_shifted_right()
    );
}

//! Regenerate Fig 2: sensor value distributions.

use astra_bench::Cli;
use astra_core::experiments::fig2;
use astra_core::pipeline::Dataset;
use astra_util::time::sensor_span;

fn main() {
    let cli = Cli::parse();
    let ds = Dataset::generate(cli.racks, cli.seed);
    // Sample every 8th node at 2-hour cadence: converged distributions at
    // a fraction of the 3-billion-sample full stream.
    let fig = fig2::compute(&ds.telemetry, sensor_span(), 8, 120);
    print!("{}", fig.render());
}

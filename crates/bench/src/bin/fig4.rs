//! Regenerate Fig 4: error/fault-mode series and errors-per-fault violin.

use astra_bench::{full_scale_factor, prepare, Cli};
use astra_core::experiments::fig4;
use astra_util::time::study_span;

fn main() {
    let cli = Cli::parse();
    let (_, analysis) = prepare(cli);
    let fig = fig4::compute(&analysis, study_span());
    print!("{}", fig.render());
    println!(
        "total x{:.1} => {:.0} (paper 4,369,731); downward trend: {}",
        full_scale_factor(cli.racks),
        fig.total_errors() as f64 * full_scale_factor(cli.racks),
        fig.trends_downward()
    );
}

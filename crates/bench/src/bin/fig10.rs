//! Regenerate Fig 10: errors and faults by rack region.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig10_12;

fn main() {
    let cli = Cli::parse();
    let (_, analysis) = prepare(cli);
    let fig = fig10_12::compute(&analysis);
    // Print only the Fig 10 section.
    let rendered = fig.render();
    let fig11_at = rendered.find("Fig 11").unwrap_or(rendered.len());
    print!("{}", &rendered[..fig11_at]);
    println!(
        "fault region spread smaller than error spread: {}",
        fig.fault_region_spread_is_smaller()
    );
}

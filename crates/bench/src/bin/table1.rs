//! Regenerate Table 1: component replacements.

use astra_bench::{full_scale_factor, Cli};
use astra_core::experiments::table1;
use astra_core::pipeline::Dataset;

fn main() {
    let cli = Cli::parse();
    let ds = Dataset::generate(cli.racks, cli.seed);
    let t = table1::compute(&ds.system, &ds.replacements);
    print!("{}", t.render());
    println!(
        "(scale x{:.1} to full Astra; paper: 836 / 46 / 1515 at 16.1% / 1.8% / 3.7%)",
        full_scale_factor(cli.racks)
    );
}

//! Regenerate Fig 13: temperature deciles vs monthly CE rate.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig13_14;
use astra_core::tempcorr::TempCorrConfig;
use astra_util::time::sensor_span;

fn main() {
    let cli = Cli::parse();
    let (ds, analysis) = prepare(cli);
    let config = TempCorrConfig::default();
    let fig = fig13_14::compute_fig13(&analysis, &ds.telemetry, sensor_span(), &config);
    print!("{}", fig.render());
    println!(
        "no monotone temperature trend: {} (paper: contradicts Schroeder et al.)",
        fig.no_monotone_trend(0.5)
    );
}

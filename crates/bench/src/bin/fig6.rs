//! Regenerate Fig 6: socket/bank/column errors vs faults.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig6;

fn main() {
    let cli = Cli::parse();
    let (_, analysis) = prepare(cli);
    let fig = fig6::compute(&analysis);
    print!("{}", fig.render());
    println!(
        "faults flatter than errors: {} (the paper's 'errors mislead' point)",
        fig.faults_flatter_than_errors()
    );
}

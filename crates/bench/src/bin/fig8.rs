//! Regenerate Fig 8: faults per bit position and physical address.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig8;

fn main() {
    let cli = Cli::parse();
    let (_, analysis) = prepare(cli);
    let fig = fig8::compute(&analysis);
    print!("{}", fig.render());
    println!(
        "single-fault bit locations: {:.1}% (paper: vast majority)",
        100.0 * fig.single_fault_bit_fraction()
    );
}

//! `bench` — end-to-end pipeline stage benchmark.
//!
//! ```text
//! cargo run --release -p astra-bench --bin bench -- pipeline \
//!     [--racks 4,12,36] [--shard-racks 108,360] [--seed 42] \
//!     [--out BENCH_pipeline.json] \
//!     [--check-floor crates/bench/floor_pipeline.json]
//! ```
//!
//! For each machine scale the driver runs the full production path —
//! simulate → serialize to disk → streaming parse → coalesce → spatial
//! aggregation → online prediction — and records per-stage wall time,
//! writing a JSON report
//! (default `BENCH_pipeline.json`, checked in at the repo root so the
//! perf trajectory is tracked across PRs). Each scale also sweeps the
//! supervised shard runner (`shard_s1`..`shard_s8`, auxiliary stages),
//! and `--shard-racks` adds generation + shard-sweep-only scales past
//! what the full pipeline can afford (the checked-in artifact uses
//! 108,360 — the fleet sizes ROADMAP item 2 calls for).
//!
//! `--check-floor` turns the run into a smoke gate for CI: the written
//! JSON must be syntactically valid and no stage may exceed 3× the
//! checked-in floor time for the matching rack count.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use astra_bench::json;
use astra_core::pipeline::{Analysis, AnalysisInput, Dataset};
use astra_core::stream::{stream_analyze, StreamOptions};
use astra_logs::binfmt::{self, LogFormat};
use astra_logs::io as logio;
use astra_logs::{ce, het, inventory, sensor};

const USAGE: &str = "\
bench — astra-mem pipeline benchmark driver

USAGE:
    bench pipeline [--racks LIST] [--shard-racks LIST] [--seed S] [--out FILE]
                   [--check-floor FILE] [--check-thresholds FILE]

OPTIONS:
    --racks LIST             comma-separated rack counts (default 4,12,36)
    --shard-racks LIST       extra scales measured through generation and the
                             supervised shard-count sweep only, skipping the
                             full pipeline (default none; the checked-in
                             artifact uses 108,360)
    --seed S                 master seed (default 42)
    --out FILE               JSON report path (default BENCH_pipeline.json)
    --check-floor FILE       fail if any stage exceeds 3x the floor time
    --check-thresholds FILE  run the stats --check regression gate against
                             each scale's metrics (p99, quarantine rate,
                             working set); fail on any violation
";

/// Shard counts every sweep point runs through — the supervised peer of
/// the `ASTRA_WORKERS` 1/2/4 determinism ladders, one step further.
const SHARD_SWEEP: [u32; 4] = [1, 2, 4, 8];

/// How much slower than the floor a stage may run before the smoke check
/// fails. Generous because CI machines are shared and slow.
const FLOOR_TOLERANCE: f64 = 3.0;

/// The span instrumentation with tracing *disabled* must cost less than
/// this fraction of pipeline wall time, or the run fails: the whole
/// design rests on the timeline being free when off.
const SPAN_OVERHEAD_LIMIT: f64 = 0.02;

struct Args {
    racks: Vec<u32>,
    shard_racks: Vec<u32>,
    seed: u64,
    out: PathBuf,
    check_floor: Option<PathBuf>,
    check_thresholds: Option<PathBuf>,
}

/// One measured pipeline stage: `(label, wall seconds)`.
type Stage = (&'static str, f64);

/// One `--shard-racks` scale: dataset cost plus the supervised
/// shard-count sweep, without the full pipeline.
struct ShardScaleResult {
    racks: u32,
    nodes: u32,
    ce_records: usize,
    simulate_secs: f64,
    serialize_bin_secs: f64,
    /// `(shard count, supervised wall seconds)` per sweep point.
    sweep: Vec<(u32, f64)>,
}

struct ScaleResult {
    racks: u32,
    nodes: u32,
    ce_records: usize,
    faults: usize,
    log_bytes: u64,
    /// Bytes the same dataset occupies in the binary columnar format.
    bin_log_bytes: u64,
    workingset_bytes: f64,
    stream_workingset_bytes: f64,
    stages: Vec<Stage>,
    /// Completed spans across the whole scale run (sum of every `time.*`
    /// histogram count) — the events `--trace-out` would have recorded.
    span_count: u64,
    /// This scale's final metric snapshot, for `--check-thresholds`.
    snapshot: astra_obs::Snapshot,
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut args = argv.into_iter();
    match args.next().as_deref() {
        Some("pipeline") => {}
        Some("help" | "--help" | "-h") | None => return Err(String::new()),
        Some(other) => return Err(format!("unknown subcommand {other}")),
    }
    let mut parsed = Args {
        racks: vec![4, 12, 36],
        shard_racks: Vec::new(),
        seed: 42,
        out: PathBuf::from("BENCH_pipeline.json"),
        check_floor: None,
        check_thresholds: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--racks" => {
                let v = args.next().ok_or("--racks needs a value")?;
                parsed.racks = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u32>()
                            .map_err(|_| format!("bad rack count {s}"))
                    })
                    .collect::<Result<_, _>>()?;
                if parsed.racks.is_empty() || parsed.racks.contains(&0) {
                    return Err("--racks needs positive counts".into());
                }
            }
            "--shard-racks" => {
                let v = args.next().ok_or("--shard-racks needs a value")?;
                parsed.shard_racks = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u32>()
                            .map_err(|_| format!("bad rack count {s}"))
                    })
                    .collect::<Result<_, _>>()?;
                if parsed.shard_racks.contains(&0) {
                    return Err("--shard-racks needs positive counts".into());
                }
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--out" => {
                parsed.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--check-floor" => {
                parsed.check_floor = Some(PathBuf::from(
                    args.next().ok_or("--check-floor needs a value")?,
                ));
            }
            "--check-thresholds" => {
                parsed.check_thresholds = Some(PathBuf::from(
                    args.next().ok_or("--check-thresholds needs a value")?,
                ));
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    // The shard supervisor re-invokes `current_exe` in the hidden
    // worker mode; when this driver is the supervising process, that
    // re-executed binary is `bench` itself, so route a worker argv
    // straight back into the CLI implementation.
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some(astra_core::shard::WORKER_COMMAND) {
        return astra_core::cli::main(argv);
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    // The micro-stage: per-span cost of the disabled-tracing fast path,
    // measured before the scales so it shares nothing with them.
    let per_span_ns = measure_span_overhead_ns();
    eprintln!("[bench] span overhead (tracing off): {per_span_ns:.0} ns/span");

    let mut results = Vec::new();
    for &racks in &args.racks {
        results.push(measure_scale(racks, args.seed)?);
    }
    let mut shard_results = Vec::new();
    for &racks in &args.shard_racks {
        shard_results.push(measure_shard_scale(racks, args.seed)?);
    }
    let report = render_report(args.seed, per_span_ns, &results, &shard_results);
    json::validate(&report).map_err(|e| format!("generated report is malformed: {e}"))?;
    std::fs::write(&args.out, &report)
        .map_err(|e| format!("writing {}: {e}", args.out.display()))?;
    eprintln!("[bench] wrote {}", args.out.display());
    print_table(&results);
    print_shard_table(&shard_results);

    // Gate: instrumentation cost extrapolated over each scale's actual
    // span volume must stay under SPAN_OVERHEAD_LIMIT of its wall time.
    for r in &results {
        let frac = span_overhead_frac(per_span_ns, r);
        eprintln!(
            "[bench] {} racks: {} spans, instrumentation ~{:.3}% of pipeline time",
            r.racks,
            r.span_count,
            100.0 * frac
        );
        if frac > SPAN_OVERHEAD_LIMIT {
            return Err(format!(
                "span instrumentation costs {:.2}% of the {}-rack pipeline \
                 (limit {:.0}%): the disabled-tracing fast path regressed",
                100.0 * frac,
                r.racks,
                100.0 * SPAN_OVERHEAD_LIMIT
            ));
        }
    }

    if let Some(floor_path) = &args.check_floor {
        check_floor(floor_path, &args.out, &results)?;
        eprintln!("[bench] floor check passed ({FLOOR_TOLERANCE}x tolerance)");
    }
    if let Some(thresholds_path) = &args.check_thresholds {
        check_thresholds(thresholds_path, &results)?;
        eprintln!("[bench] threshold check passed at every scale");
    }
    Ok(())
}

/// Time the span fast path with tracing off: open and drop spans against
/// a private registry in a tight loop. This is exactly what every
/// instrumented stage pays per span in a production (untraced) run.
fn measure_span_overhead_ns() -> f64 {
    const WARMUP: u32 = 10_000;
    const ITERS: u32 = 200_000;
    let registry = astra_obs::Registry::new();
    for _ in 0..WARMUP {
        let _guard = astra_obs::span_in(&registry, "bench.span_overhead");
    }
    let t = Instant::now();
    for _ in 0..ITERS {
        let _guard = astra_obs::span_in(&registry, "bench.span_overhead");
    }
    t.elapsed().as_nanos() as f64 / ITERS as f64
}

/// Instrumentation cost as a fraction of the scale's pipeline time: the
/// measured per-span cost times the spans the run actually completed.
fn span_overhead_frac(per_span_ns: f64, r: &ScaleResult) -> f64 {
    let total_ns = total_secs(r) * 1e9;
    if total_ns <= 0.0 {
        return 0.0;
    }
    per_span_ns * r.span_count as f64 / total_ns
}

/// The `stats --check` regression gate, applied to every scale's final
/// snapshot.
fn check_thresholds(path: &std::path::Path, results: &[ScaleResult]) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let thresholds =
        astra_obs::Thresholds::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    for r in results {
        let report = astra_obs::check(&thresholds, &r.snapshot);
        if !report.ok() {
            eprintln!("[bench] {} racks:\n{}", r.racks, report.render());
            return Err(format!(
                "{} of {} threshold rules exceeded at {} racks",
                report.violations(),
                report.results.len(),
                r.racks
            ));
        }
    }
    Ok(())
}

fn measure_scale(racks: u32, seed: u64) -> Result<ScaleResult, String> {
    eprintln!("[bench] measuring {racks} racks (seed {seed})...");
    astra_obs::reset_global();

    let t = Instant::now();
    let ds = Dataset::generate(racks, seed);
    let simulate_secs = t.elapsed().as_secs_f64();
    // The parallel k-way merge runs inside `simulate`; report its share
    // separately from the span metric it publishes.
    let merge_secs = timing_by_suffix("pipeline.merge");

    // Materialize the sensor excerpt before the serializer timings so
    // both formats measure pure serialization, not telemetry synthesis.
    std::hint::black_box(ds.sensor_excerpt());

    let dir = std::env::temp_dir().join(format!("astra-bench-pipeline-{}", std::process::id()));
    let t = Instant::now();
    ds.write_logs(&dir).map_err(|e| e.to_string())?;
    let serialize_secs = t.elapsed().as_secs_f64();
    let log_bytes = dir_bytes(&dir)?;

    let t = Instant::now();
    let input = AnalysisInput::from_dir(&dir).map_err(|e| e.to_string())?;
    let parse_secs = t.elapsed().as_secs_f64();

    let ce_records = input.records.len();
    let analysis = Analysis::run(ds.system, input.records);
    // The batch path drives the incremental engine: `consume` is the
    // sharded single pass, `coalesce`/`spatial` are the snapshot stages.
    let consume_secs = timing_by_suffix("pipeline.consume");
    let coalesce_secs = timing_by_suffix("pipeline.coalesce");
    let spatial_secs = timing_by_suffix("pipeline.spatial");
    let workingset_bytes = astra_obs::global()
        .snapshot()
        .gauge("pipeline.workingset_bytes");

    let t = Instant::now();
    let alerts = astra_predict::replay(
        &analysis.records,
        &astra_predict::PredictConfig::default(),
        &astra_predict::default_predictors(),
    );
    let predict_secs = t.elapsed().as_secs_f64();
    // Keep the alert stream alive through the timer so the stage cannot be
    // optimized away.
    std::hint::black_box(&alerts);

    // The streaming engine re-analyzes the same directory end to end
    // (parse + all analyses in one pass). It is an alternative to the
    // parse→analyze→predict path above, not a stage of it, so it is
    // excluded from the pipeline total; its peak accounted working set
    // is the bounded-memory claim the report tracks.
    let t = Instant::now();
    let report =
        stream_analyze(&dir, ds.system, &StreamOptions::default()).map_err(|e| e.to_string())?;
    let stream_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(&report);
    let stream_workingset_bytes = astra_obs::global()
        .snapshot()
        .gauge("stream.workingset_bytes");

    // Full dataset verification (the `astra-mem fsck` hot loop): a
    // lenient classify-everything pass over every log. Like `stream` it
    // is an auxiliary pass, not a stage of the batch pipeline.
    let t = Instant::now();
    let fsck_opts = astra_logs::IngestOptions::lenient(Some(1.0));
    let q_ce = logio::parse_file_streaming(&dir.join("ce.log"), ce::FORMAT, &fsck_opts, "fsck.ce")
        .map_err(|e| e.to_string())?
        .1;
    let q_het =
        logio::parse_file_streaming(&dir.join("het.log"), het::FORMAT, &fsck_opts, "fsck.het")
            .map_err(|e| e.to_string())?
            .1;
    let q_inv = logio::parse_file_streaming(
        &dir.join("inventory.log"),
        inventory::FORMAT,
        &fsck_opts,
        "fsck.inventory",
    )
    .map_err(|e| e.to_string())?
    .1;
    let q_sen = logio::parse_file_streaming(
        &dir.join("sensors.log"),
        sensor::FORMAT,
        &fsck_opts,
        "fsck.sensors",
    )
    .map_err(|e| e.to_string())?
    .1;
    let fsck_secs = t.elapsed().as_secs_f64();
    for q in [&q_ce, &q_het, &q_inv, &q_sen] {
        if !q.is_empty() {
            return Err(format!(
                "fsck of a clean dataset found damage {}",
                q.summary()
            ));
        }
    }
    // The serve daemon answering live queries over the same directory:
    // start in-process, wait for the site's first full poll (which
    // ingests the whole static dataset), then time a fixed hammer of
    // reads across the endpoint surface. Like `stream` and `fsck` it is
    // an auxiliary pass, not a stage of the batch pipeline.
    let serve_opts = astra_serve::ServeOptions {
        listen: "127.0.0.1:0".to_string(),
        poll_interval: std::time::Duration::from_millis(10),
        ..astra_serve::ServeOptions::default()
    };
    let server = astra_core::serve::start_sites(
        std::slice::from_ref(&dir),
        ds.system,
        &StreamOptions::default(),
        &serve_opts,
    )?;
    if !server.wait_ready(std::time::Duration::from_secs(300)) {
        return Err("serve daemon never became ready".into());
    }
    let site = dir.file_name().unwrap().to_string_lossy().into_owned();
    const SERVE_QUERIES: usize = 64;
    let t = Instant::now();
    for i in 0..SERVE_QUERIES {
        let path = match i % 4 {
            0 => format!("/site/{site}/analysis"),
            1 => format!("/site/{site}/spatial"),
            2 => format!("/site/{site}"),
            _ => "/health".to_string(),
        };
        let resp = astra_serve::http::get(server.addr(), &path)
            .map_err(|e| format!("serve query {path}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("serve query {path} returned {}", resp.status));
        }
        std::hint::black_box(&resp.body);
    }
    let serve_secs = t.elapsed().as_secs_f64();
    server.trigger_shutdown();
    server.join();

    std::fs::remove_dir_all(&dir).ok();

    // Binary columnar peers of serialize/parse/fsck: the same dataset
    // through the astra-binlog format. Parse is verified record-identical
    // against the simulator ground truth, and fsck is the CRC sweep.
    let bin_dir = std::env::temp_dir().join(format!("astra-bench-binlog-{}", std::process::id()));
    let t = Instant::now();
    ds.write_logs_as(&bin_dir, LogFormat::Binary)
        .map_err(|e| e.to_string())?;
    let serialize_bin_secs = t.elapsed().as_secs_f64();
    let bin_log_bytes = dir_bytes(&bin_dir)?;

    let t = Instant::now();
    let bin_input = AnalysisInput::from_dir(&bin_dir).map_err(|e| e.to_string())?;
    let parse_bin_secs = t.elapsed().as_secs_f64();
    if bin_input.records != ds.sim.ce_log || bin_input.hets != ds.sim.het_log {
        return Err("binary parse disagrees with the simulated records".into());
    }
    std::hint::black_box(&bin_input);

    let t = Instant::now();
    for (name, kind) in [
        ("ce.log", binfmt::KIND_CE),
        ("het.log", binfmt::KIND_HET),
        ("inventory.log", binfmt::KIND_INVENTORY),
        ("sensors.log", binfmt::KIND_SENSOR),
    ] {
        let q = binfmt::fsck_scan(&bin_dir.join(name), kind).map_err(|e| e.to_string())?;
        if !q.is_empty() {
            return Err(format!(
                "binary fsck of a clean dataset found damage {}",
                q.summary()
            ));
        }
    }
    let fsck_bin_secs = t.elapsed().as_secs_f64();

    let snapshot = astra_obs::global().snapshot();
    let span_count = snapshot
        .entries
        .iter()
        .filter_map(|(_, frozen)| match frozen {
            astra_obs::Frozen::Timing(h) => Some(h.count),
            _ => None,
        })
        .sum();

    let mut stages = vec![
        ("simulate", simulate_secs),
        ("merge", merge_secs),
        ("serialize", serialize_secs),
        ("parse", parse_secs),
        ("consume", consume_secs),
        ("coalesce", coalesce_secs),
        ("spatial", spatial_secs),
        ("predict", predict_secs),
        ("stream", stream_secs),
        ("fsck", fsck_secs),
        ("serve", serve_secs),
        ("serialize_bin", serialize_bin_secs),
        ("parse_bin", parse_bin_secs),
        ("fsck_bin", fsck_bin_secs),
    ];

    // Per-profile generation cost at the same rack count: auxiliary
    // stages (a run simulates *one* platform, so these never count
    // toward the pipeline total) that keep the non-astra simulators'
    // cost on the perf trajectory. Measured after the snapshot so their
    // spans stay out of span_count and the threshold gate.
    for profile in astra_platform::registry() {
        if profile.name == "astra" {
            continue; // already measured as `simulate`
        }
        let label: &'static str =
            Box::leak(format!("generate_{}", profile.name.replace('-', "_")).into_boxed_str());
        let t = Instant::now();
        let pds = Dataset::generate_profile(&profile, Some(racks), seed);
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(&pds);
        stages.push((label, secs));
    }

    // Supervised shard sweep over the binary dataset: each point
    // re-runs the whole analysis through `shard-analyze`'s supervisor
    // with worker subprocesses. Auxiliary like `stream`/`fsck` — an
    // alternative full pass, never part of the pipeline total — and
    // measured after the snapshot so its spans stay out of the gates.
    for (shards, secs) in supervised_sweep(&bin_dir, &ds, seed)? {
        let label: &'static str = Box::leak(format!("shard_s{shards}").into_boxed_str());
        stages.push((label, secs));
    }
    std::fs::remove_dir_all(&bin_dir).ok();

    Ok(ScaleResult {
        racks,
        nodes: ds.system.node_count(),
        ce_records,
        faults: analysis.faults.len(),
        log_bytes,
        bin_log_bytes,
        workingset_bytes,
        stream_workingset_bytes,
        stages,
        span_count,
        snapshot,
    })
}

/// One supervised `shard-analyze` pass per [`SHARD_SWEEP`] point over
/// an already-written dataset directory. The dataset has no manifest
/// (it came from `write_logs_as`, not `generate`), so the workers get
/// the machine shape replayed as an explicit `--racks` flag.
fn supervised_sweep(
    dir: &std::path::Path,
    ds: &Dataset,
    seed: u64,
) -> Result<Vec<(u32, f64)>, String> {
    let mut sweep = Vec::new();
    for shards in SHARD_SWEEP {
        let cfg = astra_core::shard::SupervisorConfig {
            dir: dir.to_path_buf(),
            system: ds.system,
            shards,
            timeout: std::time::Duration::from_secs(3600),
            retries: 2,
            degraded: false,
            seed,
            worker_flags: vec!["--racks".into(), ds.system.racks.to_string()],
            stream: StreamOptions::default(),
        };
        let t = Instant::now();
        let supervised = astra_core::shard::supervise(&cfg)?;
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(&supervised.analyzer);
        sweep.push((shards, secs));
    }
    Ok(sweep)
}

/// A `--shard-racks` scale: simulate, serialize binary, sweep the
/// supervised shard runner, and skip the rest of the pipeline — these
/// scales exist to extend the shard scaling curve past what the full
/// stage set can afford per run.
fn measure_shard_scale(racks: u32, seed: u64) -> Result<ShardScaleResult, String> {
    eprintln!("[bench] measuring {racks} racks (seed {seed}, shard sweep only)...");
    astra_obs::reset_global();

    let t = Instant::now();
    let ds = Dataset::generate(racks, seed);
    let simulate_secs = t.elapsed().as_secs_f64();

    let dir =
        std::env::temp_dir().join(format!("astra-bench-shard-{racks}-{}", std::process::id()));
    let t = Instant::now();
    ds.write_logs_as(&dir, LogFormat::Binary)
        .map_err(|e| e.to_string())?;
    let serialize_bin_secs = t.elapsed().as_secs_f64();

    let sweep = supervised_sweep(&dir, &ds, seed);
    std::fs::remove_dir_all(&dir).ok();

    Ok(ShardScaleResult {
        racks,
        nodes: ds.system.node_count(),
        ce_records: ds.sim.ce_log.len(),
        simulate_secs,
        serialize_bin_secs,
        sweep: sweep?,
    })
}

/// Sum of `time.` metrics whose span path ends in `suffix` (span paths
/// nest, so match by leaf — same rule as `astra-mem stats`).
fn timing_by_suffix(suffix: &str) -> f64 {
    let snap = astra_obs::global().snapshot();
    snap.entries
        .iter()
        .filter(|(name, _)| {
            name.strip_prefix("time.")
                .map(|path| path == suffix || path.ends_with(&format!("/{suffix}")))
                .unwrap_or(false)
        })
        .map(|(name, _)| snap.timing_secs(name))
        .sum()
}

fn dir_bytes(dir: &std::path::Path) -> Result<u64, String> {
    let mut total = 0;
    for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
        total += entry
            .and_then(|e| e.metadata())
            .map_err(|e| e.to_string())?
            .len();
    }
    Ok(total)
}

/// `simulate` wall time already contains the merge; `stream`, `fsck`,
/// `serve`, and the `shard_s*` sweep are alternative full passes over
/// the same data, not stages of the batch pipeline; the `*_bin` stages
/// are the binary format's peers of stages already counted; and the
/// `generate_*` stages time the other platform profiles' simulators (a
/// pipeline run simulates one platform). The total is the sum of the
/// remaining disjoint stages.
fn total_secs(r: &ScaleResult) -> f64 {
    r.stages
        .iter()
        .filter(|(label, _)| {
            *label != "merge"
                && *label != "stream"
                && *label != "fsck"
                && *label != "serve"
                && !label.ends_with("_bin")
                && !label.starts_with("generate_")
                && !label.starts_with("shard_s")
        })
        .map(|(_, secs)| secs)
        .sum()
}

fn render_report(
    seed: u64,
    per_span_ns: f64,
    results: &[ScaleResult],
    shard_results: &[ShardScaleResult],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"astra-bench-pipeline/v1\",\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(
        out,
        "  \"workers\": {},",
        astra_util::par::worker_count(usize::MAX)
    );
    let _ = writeln!(out, "  \"span_overhead_ns\": {per_span_ns:.1},");
    out.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"racks\": {},", r.racks);
        let _ = writeln!(out, "      \"nodes\": {},", r.nodes);
        let _ = writeln!(out, "      \"ce_records\": {},", r.ce_records);
        let _ = writeln!(out, "      \"faults\": {},", r.faults);
        let _ = writeln!(out, "      \"log_bytes\": {},", r.log_bytes);
        let _ = writeln!(out, "      \"bin_log_bytes\": {},", r.bin_log_bytes);
        let _ = writeln!(
            out,
            "      \"text_over_bin_bytes\": {:.2},",
            if r.bin_log_bytes > 0 {
                r.log_bytes as f64 / r.bin_log_bytes as f64
            } else {
                0.0
            }
        );
        let _ = writeln!(
            out,
            "      \"workingset_mib\": {:.1},",
            r.workingset_bytes / (1024.0 * 1024.0)
        );
        let _ = writeln!(
            out,
            "      \"stream_workingset_mib\": {:.1},",
            r.stream_workingset_bytes / (1024.0 * 1024.0)
        );
        let _ = writeln!(out, "      \"span_count\": {},", r.span_count);
        let _ = writeln!(
            out,
            "      \"span_overhead_frac\": {:.6},",
            span_overhead_frac(per_span_ns, r)
        );
        out.push_str("      \"stages\": {\n");
        for (j, (label, secs)) in r.stages.iter().enumerate() {
            let comma = if j + 1 < r.stages.len() { "," } else { "" };
            let _ = writeln!(out, "        \"{label}\": {secs:.6}{comma}");
        }
        out.push_str("      },\n");
        let _ = writeln!(out, "      \"total_secs\": {:.6}", total_secs(r));
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    if shard_results.is_empty() {
        out.push_str("  ]\n}\n");
        return out;
    }
    out.push_str("  ],\n");
    out.push_str("  \"shard_scales\": [\n");
    for (i, r) in shard_results.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"racks\": {},", r.racks);
        let _ = writeln!(out, "      \"nodes\": {},", r.nodes);
        let _ = writeln!(out, "      \"ce_records\": {},", r.ce_records);
        let _ = writeln!(out, "      \"simulate\": {:.6},", r.simulate_secs);
        let _ = writeln!(out, "      \"serialize_bin\": {:.6},", r.serialize_bin_secs);
        out.push_str("      \"shard_analyze\": {\n");
        for (j, (shards, secs)) in r.sweep.iter().enumerate() {
            let comma = if j + 1 < r.sweep.len() { "," } else { "" };
            let _ = writeln!(out, "        \"s{shards}\": {secs:.6}{comma}");
        }
        out.push_str("      }\n");
        let comma = if i + 1 < shard_results.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_table(results: &[ScaleResult]) {
    // Columns follow the stage list, so new stages never drift out of
    // alignment with a hand-kept header; widths stretch to long labels.
    let Some(first) = results.first() else { return };
    print!("{:>6} {:>8} {:>10}", "racks", "nodes", "CEs");
    for (label, _) in &first.stages {
        print!(" {label:>width$}", width = label.len().max(9));
    }
    println!(" {:>9}", "total");
    for r in results {
        print!("{:>6} {:>8} {:>10}", r.racks, r.nodes, r.ce_records);
        for (label, secs) in &r.stages {
            print!(
                " {:>width$}",
                format!("{secs:.3}s"),
                width = label.len().max(9)
            );
        }
        println!(" {:>9}", format!("{:.3}s", total_secs(r)));
    }
}

fn print_shard_table(results: &[ShardScaleResult]) {
    let Some(first) = results.first() else { return };
    print!(
        "{:>6} {:>8} {:>10} {:>9} {:>13}",
        "racks", "nodes", "CEs", "simulate", "serialize_bin"
    );
    for (shards, _) in &first.sweep {
        print!(" {:>9}", format!("shard_s{shards}"));
    }
    println!();
    for r in results {
        print!(
            "{:>6} {:>8} {:>10} {:>9} {:>13}",
            r.racks,
            r.nodes,
            r.ce_records,
            format!("{:.3}s", r.simulate_secs),
            format!("{:.3}s", r.serialize_bin_secs)
        );
        for (_, secs) in &r.sweep {
            print!(" {:>9}", format!("{secs:.3}s"));
        }
        println!();
    }
}

/// Gate against the checked-in floor: the written report must be valid
/// JSON and each stage listed in the floor must run within
/// [`FLOOR_TOLERANCE`]× its floor time at the floor's rack count.
fn check_floor(
    floor_path: &std::path::Path,
    report_path: &std::path::Path,
    results: &[ScaleResult],
) -> Result<(), String> {
    // Re-read from disk: the gate is about the artifact CI would archive.
    let report = std::fs::read_to_string(report_path)
        .map_err(|e| format!("reading {}: {e}", report_path.display()))?;
    json::validate(&report).map_err(|e| format!("{} is malformed: {e}", report_path.display()))?;

    let floor = std::fs::read_to_string(floor_path)
        .map_err(|e| format!("reading {}: {e}", floor_path.display()))?;
    json::validate(&floor).map_err(|e| format!("{} is malformed: {e}", floor_path.display()))?;
    let floor_racks = json::number_field(&floor, "racks")
        .ok_or_else(|| format!("{} has no \"racks\" field", floor_path.display()))?
        as u32;
    let measured = results
        .iter()
        .find(|r| r.racks == floor_racks)
        .ok_or_else(|| format!("no measured scale matches floor racks={floor_racks}"))?;

    let mut failures = Vec::new();
    for (label, secs) in &measured.stages {
        let Some(floor_secs) = json::number_field(&floor, label) else {
            continue;
        };
        let limit = floor_secs * FLOOR_TOLERANCE;
        if *secs > limit {
            failures.push(format!(
                "{label}: {secs:.3}s exceeds {limit:.3}s ({FLOOR_TOLERANCE}x floor {floor_secs:.3}s)"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "stage regression vs floor:\n  {}",
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_full_command_line() {
        let a = parse_args(argv(&[
            "pipeline",
            "--racks",
            "2,4",
            "--shard-racks",
            "108,360",
            "--seed",
            "7",
            "--out",
            "/tmp/x.json",
            "--check-floor",
            "floor.json",
            "--check-thresholds",
            "thresholds.json",
        ]))
        .unwrap();
        assert_eq!(a.racks, vec![2, 4]);
        assert_eq!(a.shard_racks, vec![108, 360]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, PathBuf::from("/tmp/x.json"));
        assert_eq!(a.check_floor, Some(PathBuf::from("floor.json")));
        assert_eq!(a.check_thresholds, Some(PathBuf::from("thresholds.json")));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(argv(&["pipeline", "--racks", "0"])).is_err());
        assert!(parse_args(argv(&["pipeline", "--shard-racks", "0"])).is_err());
        assert!(parse_args(argv(&["nonsense"])).is_err());
        assert!(parse_args(argv(&["pipeline", "--bogus"])).is_err());
    }

    fn sample_result() -> ScaleResult {
        ScaleResult {
            racks: 2,
            nodes: 144,
            ce_records: 1000,
            faults: 10,
            log_bytes: 4096,
            bin_log_bytes: 1024,
            workingset_bytes: 65536.0,
            stream_workingset_bytes: 32768.0,
            stages: vec![
                ("simulate", 0.5),
                ("merge", 0.1),
                ("parse", 0.25),
                ("stream", 0.4),
                ("serve", 0.3),
                ("parse_bin", 9.9),
                ("generate_x86_ddr4", 7.7),
            ],
            span_count: 1500,
            snapshot: astra_obs::Registry::new().snapshot(),
        }
    }

    #[test]
    fn report_is_valid_json() {
        let results = vec![sample_result()];
        let shard_results = vec![ShardScaleResult {
            racks: 108,
            nodes: 7776,
            ce_records: 5000,
            simulate_secs: 2.5,
            serialize_bin_secs: 0.5,
            sweep: vec![(1, 4.0), (2, 3.0), (4, 2.5), (8, 2.25)],
        }];
        let report = render_report(42, 120.0, &results, &shard_results);
        json::validate(&report).unwrap();
        assert_eq!(json::number_field(&report, "s8"), Some(2.25));
        assert_eq!(json::number_field(&report, "racks"), Some(2.0));
        assert_eq!(json::number_field(&report, "simulate"), Some(0.5));
        // total excludes the merge share (inside simulate), the stream
        // and serve passes (alternatives to parse+analyze, not stages of
        // it), the binary peers of already-counted stages, and the
        // other profiles' auxiliary generate stages.
        assert_eq!(json::number_field(&report, "total_secs"), Some(0.75));
        assert_eq!(json::number_field(&report, "generate_x86_ddr4"), Some(7.7));
        assert_eq!(json::number_field(&report, "parse_bin"), Some(9.9));
        assert_eq!(json::number_field(&report, "bin_log_bytes"), Some(1024.0));
        assert_eq!(
            json::number_field(&report, "text_over_bin_bytes"),
            Some(4.0)
        );
        assert_eq!(json::number_field(&report, "span_overhead_ns"), Some(120.0));
        assert_eq!(json::number_field(&report, "span_count"), Some(1500.0));
    }

    #[test]
    fn span_overhead_fraction_scales_with_span_volume() {
        let r = sample_result();
        // 1500 spans at 100 ns over 0.75 s of pipeline: 0.02% — well
        // under the 2% gate.
        let frac = span_overhead_frac(100.0, &r);
        assert!((frac - 0.0002).abs() < 1e-9, "{frac}");
        assert!(frac < SPAN_OVERHEAD_LIMIT);
    }

    #[test]
    fn span_overhead_micro_stage_returns_a_sane_cost() {
        let per_span = measure_span_overhead_ns();
        // A span is a string push, an Instant read, and a histogram
        // insert; anything past 100 µs means the clock or the fast path
        // is broken.
        assert!(per_span > 0.0 && per_span < 100_000.0, "{per_span}");
    }
}

//! Regenerate Fig 11: fault fractions per region by rack.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig10_12;

fn main() {
    let cli = Cli::parse();
    let (_, analysis) = prepare(cli);
    let fig = fig10_12::compute(&analysis);
    let rendered = fig.render();
    let start = rendered.find("Fig 11").unwrap_or(0);
    let end = rendered.find("Fig 12").unwrap_or(rendered.len());
    print!("{}", &rendered[start..end]);
}

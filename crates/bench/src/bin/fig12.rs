//! Regenerate Fig 12: errors and faults by rack.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig10_12;

fn main() {
    let cli = Cli::parse();
    let (_, analysis) = prepare(cli);
    let fig = fig10_12::compute(&analysis);
    let rendered = fig.render();
    let start = rendered.find("Fig 12").unwrap_or(0);
    print!("{}", &rendered[start..]);
    println!(
        "spike rack vanishes in faults: {}; rack-fault uniformity p = {:?}",
        fig.spike_rack_vanishes_in_faults(2.5),
        fig.rack_fault_uniformity_p()
    );
}

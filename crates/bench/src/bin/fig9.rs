//! Regenerate Fig 9: CE count vs pre-error DIMM temperature windows.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig9;
use astra_core::tempcorr::TempCorrConfig;
use astra_util::time::sensor_span;

fn main() {
    let cli = Cli::parse();
    let (ds, analysis) = prepare(cli);
    let config = TempCorrConfig::default();
    let fig = fig9::compute(&analysis, &ds.telemetry, sensor_span(), &config);
    print!("{}", fig.render());
    println!(
        "no strong temperature correlation: {} (the paper's negative result)",
        fig.no_strong_correlation(0.35)
    );
}

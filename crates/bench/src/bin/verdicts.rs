//! Evaluate every paper claim on a fresh dataset and print the verdict
//! table (the executable EXPERIMENTS.md).

use astra_bench::{prepare, Cli};
use astra_core::experiments::verdicts;
use astra_core::tempcorr::TempCorrConfig;

fn main() {
    let cli = Cli::parse();
    let (ds, analysis) = prepare(cli);
    let verdicts = verdicts::evaluate(&ds, &analysis, &TempCorrConfig::default());
    print!("{}", verdicts::render(&verdicts));
    println!(
        "{}/{} claims pass at {} racks (seed {})",
        verdicts::passing(&verdicts),
        verdicts.len(),
        cli.racks,
        cli.seed
    );
}

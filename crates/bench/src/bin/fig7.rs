//! Regenerate Fig 7: rank and DIMM-slot errors vs faults.

use astra_bench::{prepare, Cli};
use astra_core::experiments::fig7;

fn main() {
    let cli = Cli::parse();
    let (_, analysis) = prepare(cli);
    let fig = fig7::compute(&analysis);
    print!("{}", fig.render());
    println!(
        "rank 0 dominates: {}; hot slots (J,E,I,P) dominate: {}",
        fig.rank0_dominates(),
        fig.hot_slots_dominate()
    );
}

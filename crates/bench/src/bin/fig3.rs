//! Regenerate Fig 3: daily replacement series.

use astra_bench::Cli;
use astra_core::experiments::fig3;
use astra_core::pipeline::Dataset;
use astra_util::time::replacement_span;

fn main() {
    let cli = Cli::parse();
    let ds = Dataset::generate(cli.racks, cli.seed);
    let fig = fig3::compute(&ds.replacements, replacement_span());
    print!("{}", fig.render());
    for cat in 0..3 {
        println!(
            "infant mortality visible in series {cat}: {}",
            fig.infant_mortality_visible(cat)
        );
    }
}

//! One bench per paper exhibit: the cost of regenerating each table and
//! figure from a prepared dataset. Together with the `figN`/`table1`
//! binaries these form the per-experiment harness of DESIGN.md §3.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use astra_core::experiments as exp;
use astra_core::pipeline::{Analysis, Dataset};
use astra_core::tempcorr::TempCorrConfig;
use astra_util::time::{het_firmware_date, replacement_span, sensor_span, study_span, TimeSpan};
use astra_util::CalDate;

fn bench_experiments(c: &mut Criterion) {
    let ds = Dataset::generate(2, 42);
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
    let quick = TempCorrConfig {
        max_ce_samples: 500,
        window_stride: 60,
        monthly_stride: 24 * 60,
        bin_width: 1.0,
    };
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("table1", |b| {
        b.iter(|| black_box(exp::table1::compute(&ds.system, &ds.replacements)));
    });
    group.bench_function("fig2", |b| {
        b.iter(|| black_box(exp::fig2::compute(&ds.telemetry, sensor_span(), 16, 240)));
    });
    group.bench_function("fig3", |b| {
        b.iter(|| black_box(exp::fig3::compute(&ds.replacements, replacement_span())));
    });
    group.bench_function("fig4", |b| {
        b.iter(|| black_box(exp::fig4::compute(&analysis, study_span())));
    });
    group.bench_function("fig5", |b| {
        b.iter(|| black_box(exp::fig5::compute(&analysis)));
    });
    group.bench_function("fig6", |b| {
        b.iter(|| black_box(exp::fig6::compute(&analysis)));
    });
    group.bench_function("fig7", |b| {
        b.iter(|| black_box(exp::fig7::compute(&analysis)));
    });
    group.bench_function("fig8", |b| {
        b.iter(|| black_box(exp::fig8::compute(&analysis)));
    });
    group.bench_function("fig9", |b| {
        b.iter(|| {
            black_box(exp::fig9::compute(
                &analysis,
                &ds.telemetry,
                sensor_span(),
                &quick,
            ))
        });
    });
    group.bench_function("fig10_12", |b| {
        b.iter(|| black_box(exp::fig10_12::compute(&analysis)));
    });
    group.bench_function("fig13", |b| {
        b.iter(|| {
            black_box(exp::fig13_14::compute_fig13(
                &analysis,
                &ds.telemetry,
                sensor_span(),
                &quick,
            ))
        });
    });
    group.bench_function("fig14", |b| {
        b.iter(|| {
            black_box(exp::fig13_14::compute_fig14(
                &analysis,
                &ds.telemetry,
                sensor_span(),
                &quick,
            ))
        });
    });
    group.bench_function("fig15", |b| {
        let window = TimeSpan::dates(het_firmware_date(), CalDate::new(2019, 9, 14));
        b.iter(|| {
            black_box(exp::fig15::compute(
                &ds.sim.het_log,
                window,
                ds.system.dimm_count(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);

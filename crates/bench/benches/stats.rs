//! Benchmarks of the statistics substrate on realistic workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use astra_stats::{
    chi_square_uniform, fit_power_law, fit_power_law_auto, top_share, ViolinSummary,
};
use astra_util::dist::power_law;
use astra_util::DetRng;

fn heavy_tailed_sample(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    (0..n).map(|_| power_law(&mut rng, 1, 2.2)).collect()
}

fn bench_power_law(c: &mut Criterion) {
    let samples = heavy_tailed_sample(100_000, 42);
    let mut group = c.benchmark_group("power_law");
    group.bench_function("fit_fixed_xmin", |b| {
        b.iter(|| black_box(fit_power_law(&samples, 1)));
    });
    group.bench_function("fit_auto_xmin", |b| {
        b.iter(|| black_box(fit_power_law_auto(&samples, 50, 16)));
    });
    group.finish();
}

fn bench_chi_square(c: &mut Criterion) {
    let counts: Vec<u64> = (0..128).map(|i| 1000 + (i % 7)).collect();
    c.bench_function("chi_square_uniform_128", |b| {
        b.iter(|| black_box(chi_square_uniform(&counts)));
    });
}

fn bench_top_share(c: &mut Criterion) {
    let counts = heavy_tailed_sample(100_000, 7);
    c.bench_function("top_share_100k", |b| {
        b.iter(|| black_box(top_share(&counts)));
    });
}

fn bench_violin(c: &mut Criterion) {
    let counts = heavy_tailed_sample(10_000, 9);
    c.bench_function("violin_10k", |b| {
        b.iter(|| black_box(ViolinSummary::from_counts(&counts, 64)));
    });
}

criterion_group!(
    benches,
    bench_power_law,
    bench_chi_square,
    bench_top_share,
    bench_violin
);
criterion_main!(benches);

//! Benchmarks of the core pipeline stages: simulation, serialization,
//! parsing, coalescing, and spatial aggregation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use astra_core::coalesce::{coalesce, CoalesceConfig};
use astra_core::pipeline::{AnalysisInput, Dataset};
use astra_core::spatial::SpatialCounts;
use astra_faultsim::{simulate, SimProfile};
use astra_topology::SystemConfig;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for racks in [1u32, 4] {
        group.bench_function(format!("racks_{racks}"), |b| {
            let system = SystemConfig::scaled(racks);
            let profile = SimProfile::astra();
            b.iter(|| black_box(simulate(&system, &profile, 42)));
        });
    }
    group.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    let ds = Dataset::generate(2, 42);
    let config = CoalesceConfig::default();
    let mut group = c.benchmark_group("coalesce");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(ds.sim.ce_log.len() as u64));
    group.bench_function("records", |b| {
        b.iter(|| black_box(coalesce(&ds.sim.ce_log, &config)));
    });
    group.finish();
}

fn bench_spatial(c: &mut Criterion) {
    let ds = Dataset::generate(2, 42);
    let faults = coalesce(&ds.sim.ce_log, &CoalesceConfig::default());
    let mut group = c.benchmark_group("spatial");
    group.sample_size(20);
    group.bench_function("aggregate", |b| {
        b.iter(|| black_box(SpatialCounts::compute(&ds.system, &ds.sim.ce_log, &faults)));
    });
    group.finish();
}

fn bench_parse_overhead(c: &mut Criterion) {
    // Design decision #2 in DESIGN.md: the analyzer consumes text logs.
    // Measure what that costs relative to taking records directly.
    let ds = Dataset::generate(1, 42);
    let (ce, het, inv) = ds.to_text();
    let mut group = c.benchmark_group("parse_overhead");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Bytes(ce.len() as u64));
    group.bench_function("from_text", |b| {
        b.iter(|| black_box(AnalysisInput::from_text(&ce, &het, &inv).unwrap()));
    });
    group.bench_function("direct", |b| {
        // from_dataset_direct consumes the dataset, so the clone happens
        // in setup and the timed body measures only the move.
        b.iter_batched(
            || ds.clone(),
            |ds| black_box(AnalysisInput::from_dataset_direct(ds)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_parallel_parse(c: &mut Criterion) {
    // Sharded parallel parsing vs a single-threaded pass over the same
    // CE log text.
    let ds = Dataset::generate(2, 42);
    let (ce, _, _) = ds.to_text();
    let mut group = c.benchmark_group("ce_parse");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Bytes(ce.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(
                astra_logs::io::read_lines(ce.as_bytes(), astra_logs::CeRecord::parse_line)
                    .unwrap(),
            )
        });
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(astra_logs::io::parse_lines_parallel(
                &ce,
                astra_logs::CeRecord::parse_line,
            ))
        });
    });
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let ds = Dataset::generate(1, 42);
    let mut group = c.benchmark_group("serialize");
    group.sample_size(10);
    group.bench_function("to_text", |b| {
        b.iter_batched(|| (), |_| black_box(ds.to_text()), BatchSize::SmallInput);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_coalesce,
    bench_spatial,
    bench_parse_overhead,
    bench_parallel_parse,
    bench_serialize
);
criterion_main!(benches);

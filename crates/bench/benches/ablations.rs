//! Ablation benches for the design decisions DESIGN.md calls out.
//!
//! These are benches in the broader sense: each measures the *cost* of a
//! design choice and, where relevant, prints the quantitative effect on
//! analysis conclusions to stderr the first time it runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

use astra_core::coalesce::{coalesce, CoalesceConfig};
use astra_core::experiments::fig6::Fig6;
use astra_core::pipeline::{Analysis, Dataset};
use astra_faultsim::SimProfile;
use astra_topology::SystemConfig;

/// Ablation 1 (DESIGN.md #1): classify on coalesced faults vs raw errors.
/// The bench measures both paths; the printed CV contrast is the paper's
/// "errors mislead" quantified.
fn ablation_faults_vs_errors(c: &mut Criterion) {
    let ds = Dataset::generate(2, 42);
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());

    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        let s = &analysis.spatial;
        eprintln!(
            "[ablation faults-vs-errors] bank-axis CV: errors {:.2} vs faults {:.2}",
            Fig6::cv(&s.errors_by_bank),
            Fig6::cv(&s.faults_by_bank),
        );
    });

    let mut group = c.benchmark_group("ablation_faults_vs_errors");
    group.sample_size(20);
    group.bench_function("error_level_aggregation", |b| {
        // Raw error counting only (no coalescing).
        b.iter(|| {
            let mut by_bank = vec![0u64; 16];
            for rec in &ds.sim.ce_log {
                by_bank[usize::from(rec.bank)] += 1;
            }
            black_box(by_bank)
        });
    });
    group.bench_function("fault_level_aggregation", |b| {
        // Full coalesce + fault counting.
        b.iter(|| {
            let faults = coalesce(&ds.sim.ce_log, &CoalesceConfig::default());
            let mut by_bank = vec![0u64; 16];
            for f in &faults {
                if let Some(bank) = f.bank {
                    by_bank[usize::from(bank)] += 1;
                }
            }
            black_box(by_bank)
        });
    });
    group.finish();
}

/// Ablation 3 (DESIGN.md #3): kernel CE buffer sizing. Smaller buffers
/// drop more CEs and distort error counts; fault counts are robust.
fn ablation_log_buffer(c: &mut Criterion) {
    let system = SystemConfig::scaled(1);

    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        for capacity in [4usize, 16, 64, 256] {
            let mut profile = SimProfile::astra();
            profile.buffer_capacity = capacity;
            // Concentrate bursts to stress the buffer.
            profile.burst_mean = 24.0;
            profile.polls_per_minute = 2;
            let out = astra_faultsim::simulate(&system, &profile, 42);
            let offered = out.offered_errors();
            let faults = coalesce(&out.ce_log, &CoalesceConfig::default());
            eprintln!(
                "[ablation log-buffer] capacity {capacity:>3}: logged {:>7}/{offered} CEs \
                 ({:.1}% lost), observed faults {}",
                out.ce_log.len(),
                100.0 * out.dropped_ces as f64 / offered as f64,
                faults.len(),
            );
        }
    });

    let mut group = c.benchmark_group("ablation_log_buffer");
    group.sample_size(10);
    for capacity in [16usize, 256] {
        group.bench_function(format!("capacity_{capacity}"), |b| {
            let mut profile = SimProfile::astra();
            profile.buffer_capacity = capacity;
            b.iter(|| black_box(astra_faultsim::simulate(&system, &profile, 42)));
        });
    }
    group.finish();
}

/// Ablation: the rank-level (pin) extraction threshold. Too low shatters
/// ordinary faults into pin faults; too high shatters pin faults into
/// per-bank faults.
fn ablation_pin_threshold(c: &mut Criterion) {
    let ds = Dataset::generate(1, 42);

    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        for threshold in [2usize, 4, 8, 16] {
            let config = CoalesceConfig {
                pin_bank_threshold: threshold,
                ..CoalesceConfig::default()
            };
            let faults = coalesce(&ds.sim.ce_log, &config);
            let rank_level = faults
                .iter()
                .filter(|f| f.mode == astra_core::ObservedMode::RankLevel)
                .count();
            eprintln!(
                "[ablation pin-threshold] threshold {threshold:>2}: {} faults total, \
                 {rank_level} rank-level",
                faults.len(),
            );
        }
    });

    let mut group = c.benchmark_group("ablation_pin_threshold");
    group.sample_size(20);
    for threshold in [2usize, 4, 16] {
        group.bench_function(format!("threshold_{threshold}"), |b| {
            let config = CoalesceConfig {
                pin_bank_threshold: threshold,
                ..CoalesceConfig::default()
            };
            b.iter(|| black_box(coalesce(&ds.sim.ce_log, &config)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_faults_vs_errors,
    ablation_log_buffer,
    ablation_pin_threshold
);
criterion_main!(benches);

//! The regression gate behind `stats --check` and `bench pipeline`:
//! compare a live metric snapshot against a checked-in threshold file
//! and produce a typed pass/fail report.
//!
//! The threshold file is JSON-lines, one rule per line; `#` comments
//! and blank lines are skipped:
//!
//! ```text
//! {"rule":"stage_p99_ms","stage":"pipeline.parse","max":120000}
//! {"rule":"quarantine_rate","max":0.01}
//! {"rule":"workingset_mib","max":4096}
//! {"rule":"counter_max","name":"ingest.quarantined.bad-utf8","max":0}
//! ```
//!
//! Unknown rules and malformed lines are hard errors — a gate that
//! silently skips rules gates nothing.

use crate::export::{Frozen, Snapshot};
use crate::metrics::{Histogram, HistogramSnapshot};

/// One threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// Merged p99 across every `time.*` timing whose leaf stage is
    /// `stage` (any nesting), in milliseconds.
    StageP99Ms {
        /// Leaf stage name, e.g. `pipeline.parse`.
        stage: String,
        /// Upper bound in milliseconds.
        max: f64,
    },
    /// Quarantined lines as a fraction of all ingested lines
    /// (`ingest.quarantined.*` over those plus `parse.*.lines_ok`).
    QuarantineRate {
        /// Upper bound on the fraction (0–1).
        max: f64,
    },
    /// Peak working set, MiB: the max of the batch and streaming
    /// working-set gauges.
    WorkingsetMib {
        /// Upper bound in MiB.
        max: f64,
    },
    /// Upper bound on one named counter.
    CounterMax {
        /// Counter name.
        name: String,
        /// Upper bound on its value.
        max: f64,
    },
    /// p99 of the serve daemon's per-request latency (the `serve.request`
    /// timing histogram), in milliseconds. Zero when the daemon never
    /// served a request, so the rule is inert outside serve runs.
    ServeP99Ms {
        /// Upper bound in milliseconds.
        max: f64,
    },
}

impl Rule {
    /// Identity string used in the report.
    pub fn describe(&self) -> String {
        match self {
            Rule::StageP99Ms { stage, .. } => format!("stage_p99_ms[{stage}]"),
            Rule::QuarantineRate { .. } => "quarantine_rate".to_string(),
            Rule::WorkingsetMib { .. } => "workingset_mib".to_string(),
            Rule::CounterMax { name, .. } => format!("counter_max[{name}]"),
            Rule::ServeP99Ms { .. } => "serve_p99_ms".to_string(),
        }
    }

    fn limit(&self) -> f64 {
        match self {
            Rule::StageP99Ms { max, .. }
            | Rule::QuarantineRate { max }
            | Rule::WorkingsetMib { max }
            | Rule::CounterMax { max, .. }
            | Rule::ServeP99Ms { max } => *max,
        }
    }
}

/// A parsed threshold file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Thresholds {
    /// Rules in file order.
    pub rules: Vec<Rule>,
}

impl Thresholds {
    /// Parse the JSON-lines rule file.
    pub fn parse(text: &str) -> Result<Thresholds, String> {
        let mut rules = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            let rule = crate::export::json_str(line, "rule")
                .ok_or_else(|| format!("thresholds line {lineno}: no \"rule\" key"))?;
            let max = crate::export::json_num(line, "max")
                .ok_or_else(|| format!("thresholds line {lineno}: no \"max\" key"))?;
            rules.push(match rule.as_str() {
                "stage_p99_ms" => Rule::StageP99Ms {
                    stage: crate::export::json_str(line, "stage").ok_or_else(|| {
                        format!("thresholds line {lineno}: stage_p99_ms needs \"stage\"")
                    })?,
                    max,
                },
                "quarantine_rate" => Rule::QuarantineRate { max },
                "workingset_mib" => Rule::WorkingsetMib { max },
                "counter_max" => Rule::CounterMax {
                    name: crate::export::json_str(line, "name").ok_or_else(|| {
                        format!("thresholds line {lineno}: counter_max needs \"name\"")
                    })?,
                    max,
                },
                "serve_p99_ms" => Rule::ServeP99Ms { max },
                other => return Err(format!("thresholds line {lineno}: unknown rule {other:?}")),
            });
        }
        Ok(Thresholds { rules })
    }
}

/// One rule's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Rule identity ([`Rule::describe`]).
    pub rule: String,
    /// Observed value in the rule's unit.
    pub observed: f64,
    /// Configured upper bound.
    pub limit: f64,
    /// `observed <= limit`.
    pub ok: bool,
}

/// Outcome of checking a snapshot against a threshold file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// Per-rule outcomes, in file order.
    pub results: Vec<CheckResult>,
}

impl CheckReport {
    /// True when every rule passed.
    pub fn ok(&self) -> bool {
        self.results.iter().all(|r| r.ok)
    }

    /// Number of exceeded rules.
    pub fn violations(&self) -> usize {
        self.results.iter().filter(|r| !r.ok).count()
    }

    /// Human-readable report, one line per rule plus a verdict.
    pub fn render(&self) -> String {
        let width = self
            .results
            .iter()
            .map(|r| r.rule.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!("threshold check: {} rules\n", self.results.len());
        for r in &self.results {
            out.push_str(&format!(
                "  {}  {:<width$}  observed {} {} max {}\n",
                if r.ok { "ok  " } else { "FAIL" },
                r.rule,
                fmt_value(r.observed),
                if r.ok { "<=" } else { ">" },
                fmt_value(r.limit),
            ));
        }
        if self.ok() {
            out.push_str("threshold check passed\n");
        } else {
            out.push_str(&format!(
                "threshold check FAILED: {} of {} rules exceeded\n",
                self.violations(),
                self.results.len()
            ));
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.4}")
    }
}

/// Evaluate every rule against the snapshot.
pub fn check(thresholds: &Thresholds, snap: &Snapshot) -> CheckReport {
    CheckReport {
        results: thresholds
            .rules
            .iter()
            .map(|rule| {
                let observed = observe(rule, snap);
                CheckResult {
                    rule: rule.describe(),
                    observed,
                    limit: rule.limit(),
                    ok: observed <= rule.limit(),
                }
            })
            .collect(),
    }
}

fn observe(rule: &Rule, snap: &Snapshot) -> f64 {
    match rule {
        Rule::StageP99Ms { stage, .. } => merged_stage_timing(snap, stage)
            .map(|h| h.p99() as f64 / 1e6)
            .unwrap_or(0.0),
        Rule::QuarantineRate { .. } => {
            let quarantined = sum_counters(snap, |n| n.starts_with("ingest.quarantined."));
            let parsed = sum_counters(snap, |n| {
                n.starts_with("parse.") && n.ends_with(".lines_ok")
            });
            let total = quarantined + parsed;
            if total == 0 {
                0.0
            } else {
                quarantined as f64 / total as f64
            }
        }
        Rule::WorkingsetMib { .. } => {
            let peak = snap
                .gauge("pipeline.workingset_bytes")
                .max(snap.gauge("stream.workingset_bytes"));
            peak / (1024.0 * 1024.0)
        }
        Rule::CounterMax { name, .. } => snap.counter(name) as f64,
        Rule::ServeP99Ms { .. } => match snap.get("serve.request") {
            Some(Frozen::Timing(s)) => s.p99() as f64 / 1e6,
            _ => 0.0,
        },
    }
}

fn sum_counters(snap: &Snapshot, keep: impl Fn(&str) -> bool) -> u64 {
    snap.entries
        .iter()
        .filter_map(|(name, frozen)| match frozen {
            Frozen::Counter(v) if keep(name) => Some(*v),
            _ => None,
        })
        .sum()
}

/// Merge every `time.*` timing whose path is exactly `stage` or ends in
/// `/stage` into one histogram — the same leaf matching the `stats`
/// stage breakdown uses, so percentiles aggregate over all call
/// contexts of a stage.
pub fn merged_stage_timing(snap: &Snapshot, stage: &str) -> Option<HistogramSnapshot> {
    let suffix = format!("/{stage}");
    let mut merged: Option<Histogram> = None;
    for (name, frozen) in &snap.entries {
        let Frozen::Timing(s) = frozen else { continue };
        let Some(path) = name.strip_prefix("time.") else {
            continue;
        };
        if path == stage || path.ends_with(&suffix) {
            merged
                .get_or_insert_with(|| Histogram::new(&s.bounds))
                .merge_snapshot(s);
        }
    }
    merged.map(|h| h.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn snapshot_with_stages() -> Snapshot {
        let r = Registry::new();
        r.timing("time.pipeline.analyze/pipeline.parse")
            .record(2_000_000); // 2 ms
        r.timing("time.pipeline.parse").record(10_000_000); // 10 ms
        r.counter("parse.ce.lines_ok").add(990);
        r.counter("ingest.quarantined.bad-utf8").add(10);
        r.gauge("pipeline.workingset_bytes")
            .set(3.0 * 1024.0 * 1024.0);
        r.snapshot()
    }

    #[test]
    fn parse_accepts_all_rule_kinds_and_comments() {
        let t = Thresholds::parse(concat!(
            "# comment\n",
            "\n",
            "{\"rule\":\"stage_p99_ms\",\"stage\":\"pipeline.parse\",\"max\":100}\n",
            "{\"rule\":\"quarantine_rate\",\"max\":0.5}\n",
            "{\"rule\":\"workingset_mib\",\"max\":64}\n",
            "{\"rule\":\"counter_max\",\"name\":\"x\",\"max\":3}\n",
            "{\"rule\":\"serve_p99_ms\",\"max\":250}\n",
        ))
        .expect("parses");
        assert_eq!(t.rules.len(), 5);
        assert_eq!(t.rules[4], Rule::ServeP99Ms { max: 250.0 });
        assert_eq!(
            t.rules[0],
            Rule::StageP99Ms {
                stage: "pipeline.parse".to_string(),
                max: 100.0
            }
        );
    }

    #[test]
    fn parse_rejects_unknown_and_incomplete_rules() {
        assert!(Thresholds::parse("{\"rule\":\"nope\",\"max\":1}")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(Thresholds::parse("{\"rule\":\"stage_p99_ms\",\"max\":1}")
            .unwrap_err()
            .contains("stage"));
        assert!(Thresholds::parse("{\"max\":1}")
            .unwrap_err()
            .contains("rule"));
    }

    #[test]
    fn merged_stage_timing_matches_leaves_across_contexts() {
        let snap = snapshot_with_stages();
        let merged = merged_stage_timing(&snap, "pipeline.parse").expect("present");
        assert_eq!(merged.count, 2, "rooted + nested occurrences merge");
        assert_eq!(merged.sum, 12_000_000);
        assert!(merged_stage_timing(&snap, "absent.stage").is_none());
    }

    #[test]
    fn check_passes_generous_and_fails_tight_limits() {
        let snap = snapshot_with_stages();
        let pass = Thresholds::parse(concat!(
            "{\"rule\":\"stage_p99_ms\",\"stage\":\"pipeline.parse\",\"max\":1000}\n",
            "{\"rule\":\"quarantine_rate\",\"max\":0.05}\n",
            "{\"rule\":\"workingset_mib\",\"max\":64}\n",
        ))
        .unwrap();
        let report = check(&pass, &snap);
        assert!(report.ok(), "{}", report.render());
        assert!(report.render().contains("threshold check passed"));

        let tight = Thresholds::parse("{\"rule\":\"quarantine_rate\",\"max\":0.001}").unwrap();
        let report = check(&tight, &snap);
        assert!(!report.ok());
        assert_eq!(report.violations(), 1);
        let rendered = report.render();
        assert!(rendered.contains("FAIL"), "{rendered}");
        assert!(rendered.contains("quarantine_rate"), "{rendered}");
        // 10 quarantined of 1000 total lines.
        assert!((report.results[0].observed - 0.01).abs() < 1e-9);
    }

    #[test]
    fn workingset_rule_reads_the_peak_gauge() {
        let snap = snapshot_with_stages();
        let t = Thresholds::parse("{\"rule\":\"workingset_mib\",\"max\":2}").unwrap();
        let report = check(&t, &snap);
        assert!(!report.ok());
        assert!((report.results[0].observed - 3.0).abs() < 1e-9);
    }

    #[test]
    fn serve_rule_reads_request_p99_and_is_inert_without_traffic() {
        // No serve.request timing recorded: observed is 0, any max passes.
        let t = Thresholds::parse("{\"rule\":\"serve_p99_ms\",\"max\":0}").unwrap();
        let report = check(&t, &snapshot_with_stages());
        assert!(report.ok());
        assert_eq!(report.results[0].observed, 0.0);

        // With traffic, the rule reads the timing's p99 in milliseconds.
        let r = Registry::new();
        for _ in 0..100 {
            r.timing("serve.request").record(4_000_000); // 4 ms
        }
        let report = check(&t, &r.snapshot());
        assert!(!report.ok());
        assert!(
            report.results[0].observed > 1.0,
            "p99 of 4ms samples should exceed 1ms, got {}",
            report.results[0].observed
        );
        let generous = Thresholds::parse("{\"rule\":\"serve_p99_ms\",\"max\":1000}").unwrap();
        assert!(check(&generous, &r.snapshot()).ok());
    }

    #[test]
    fn counter_rule_treats_absent_as_zero() {
        let snap = Registry::new().snapshot();
        let t =
            Thresholds::parse("{\"rule\":\"counter_max\",\"name\":\"never\",\"max\":0}").unwrap();
        assert!(check(&t, &snap).ok());
    }
}

//! The three metric primitives: counters, gauges, and fixed-bucket
//! histograms. All are cheap `Arc`-backed handles over atomics, so call
//! sites clone them freely and never take the registry lock on the hot
//! path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `value` if it is higher than the current
    /// reading (peak tracking).
    pub fn set_max(&self, value: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(current) >= value {
                return;
            }
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram over `u64` observations (latencies in
/// nanoseconds, sizes in items/bytes).
///
/// Bucket `i` counts observations `<= bounds[i]`; one extra overflow
/// bucket catches the rest. Sum, count, min, and max are tracked
/// exactly; buckets give shape.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (overflow last)
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Create a histogram with the given sorted bucket upper bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            inner: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let core = &*self.inner;
        let idx = core
            .bounds
            .partition_point(|&bound| bound < value)
            .min(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Consistent-enough point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.inner;
        let count = core.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: core.bounds.clone(),
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
        }
    }

    /// Fold another histogram's exported state into this one (used when
    /// importing a dataset's `metrics.jsonl`). Bucket-by-bucket when the
    /// bounds match; otherwise the counts are re-bucketed by bound value.
    pub fn merge_snapshot(&self, other: &HistogramSnapshot) {
        let core = &*self.inner;
        if other.bounds == core.bounds {
            for (mine, theirs) in core.buckets.iter().zip(&other.buckets) {
                mine.fetch_add(*theirs, Ordering::Relaxed);
            }
        } else {
            for (i, &n) in other.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                // Re-bucket by the source bucket's upper bound (overflow
                // keeps overflowing).
                let idx = match other.bounds.get(i) {
                    Some(&bound) => core.bounds.partition_point(|&b| b < bound),
                    None => core.bounds.len(),
                };
                core.buckets[idx.min(core.bounds.len())].fetch_add(n, Ordering::Relaxed);
            }
        }
        if other.count > 0 {
            core.count.fetch_add(other.count, Ordering::Relaxed);
            core.sum.fetch_add(other.sum, Ordering::Relaxed);
            core.min.fetch_min(other.min, Ordering::Relaxed);
            core.max.fetch_max(other.max, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): linear interpolation inside
    /// the bucket holding the rank, clamped to the exact min/max. Empty
    /// histograms report 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket i covers (bounds[i-1], bounds[i]]; the first
                // bucket starts at the observed min and the overflow
                // bucket ends at the observed max.
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                let hi = match self.bounds.get(i) {
                    Some(&bound) => bound,
                    None => self.max,
                };
                let (lo, hi) = (lo.min(hi), hi.max(lo));
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median estimate ([`HistogramSnapshot::quantile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_and_peak() {
        let g = Gauge::default();
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.set_max(0.5);
        assert_eq!(g.get(), 1.5, "set_max never lowers");
        g.set_max(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let h = Histogram::new(&[1, 10, 100]);
        for v in [0, 1, 5, 10, 11, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 1, 1]); // <=1, <=10, <=100, overflow
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1027);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn histogram_merge_matching_bounds() {
        let a = Histogram::new(&[10, 100]);
        let b = Histogram::new(&[10, 100]);
        a.record(5);
        b.record(50);
        b.record(500);
        a.merge_snapshot(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets, vec![1, 1, 1]);
        assert_eq!(s.max, 500);
    }

    #[test]
    fn histogram_merge_rebuckets_foreign_bounds() {
        let a = Histogram::new(&[100]);
        let b = Histogram::new(&[10, 1000]);
        b.record(5); // bucket le=10 → lands in a's le=100
        b.record(500); // bucket le=1000 → overflow in a
        a.merge_snapshot(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.buckets, vec![1, 1]);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn quantiles_on_a_uniform_distribution() {
        // One value per unit bucket: quantiles are exact.
        let bounds: Vec<u64> = (1..=100).collect();
        let h = Histogram::new(&bounds);
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 50);
        assert_eq!(s.p95(), 95);
        assert_eq!(s.p99(), 99);
        assert_eq!(s.quantile(0.0), 1, "q=0 clamps to the first rank");
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        // All mass in one wide bucket: interpolation would guess mid-
        // bucket, but min/max pin the estimate to the observed value.
        let h = Histogram::new(&[0, 100]);
        for _ in 0..50 {
            h.record(60);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 60);
        assert_eq!(s.p99(), 60);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 values spread evenly through (0, 1000]: p50 lands near the
        // middle of the le=1000 bucket's populated range.
        let h = Histogram::new(&[100, 1000]);
        for v in 1..=100u64 {
            h.record(v * 10);
        }
        let s = h.snapshot();
        // 10 values <= 100, 90 in (100, 1000]. rank(0.5)=50 → 40th of 90
        // in the second bucket → 100 + (40/90)*900 = 500.
        assert_eq!(s.p50(), 500);
        assert_eq!(s.quantile(0.1), 100, "rank 10 is the last of bucket 0");
    }

    #[test]
    fn quantiles_on_empty_histogram_are_zero() {
        let s = Histogram::new(&[10]).snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn quantiles_hit_overflow_bucket() {
        let h = Histogram::new(&[10]);
        h.record(5);
        h.record(5000);
        let s = h.snapshot();
        // rank(0.99)=2 → overflow bucket, upper edge = observed max.
        assert_eq!(s.p99(), 5000);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = Counter::default();
        let h = Histogram::new(&[8, 64, 512]);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record((i * (t + 1)) % 1024);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }
}

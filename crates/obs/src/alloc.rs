//! Byte-counting `#[global_allocator]` wrapper for per-span memory
//! accounting.
//!
//! Binaries opt in by declaring
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: astra_obs::CountingAlloc = astra_obs::CountingAlloc::new();
//! ```
//!
//! after which every allocation updates a per-thread current/peak byte
//! pair. Spans snapshot the pair on open and, when tracing is enabled,
//! publish the delta on drop as `mem.<path>.peak_bytes` /
//! `mem.<path>.net_bytes` gauges and as trace-event args. Attribution
//! is per-thread: a worker's allocations land on the worker's spans,
//! not the caller's — which is exactly what the flame table wants.
//!
//! The wrapper detects its own installation (the first counted
//! allocation flips a flag), so the accounting code needs no explicit
//! registration call, and processes without the wrapper simply never
//! emit `mem.*` gauges. This is the one module in the crate allowed to
//! contain `unsafe`: the `GlobalAlloc` contract requires it, and every
//! unsafe block is a direct delegation to [`System`].

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// A `#[global_allocator]` wrapper around [`System`] keeping per-thread
/// current/peak byte counts for span memory accounting.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for the `static` a binary declares.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

static INSTALLED: AtomicBool = AtomicBool::new(false);

#[derive(Debug, Clone, Copy)]
struct Mem {
    current: i64,
    peak: i64,
}

thread_local! {
    static MEM: Cell<Mem> = const { Cell::new(Mem { current: 0, peak: 0 }) };
}

fn note(delta: i64) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    // try_with: allocations during TLS teardown must not panic.
    let _ = MEM.try_with(|mem| {
        let mut m = mem.get();
        m.current += delta;
        if m.current > m.peak {
            m.peak = m.current;
        }
        mem.set(m);
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            note(layout.size() as i64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        note(-(layout.size() as i64));
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            note(layout.size() as i64);
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            note(new_size as i64 - layout.size() as i64);
        }
        new_ptr
    }
}

/// Whether the wrapper is this process's allocator (observed, not
/// declared: set by the first counted allocation).
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Per-span memory baseline captured at span open.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanMem {
    base_current: i64,
    saved_peak: i64,
}

/// Snapshot the thread's allocation state and reset the peak so the
/// span measures its own high-water mark. Returns `None` when the
/// wrapper is not installed (nothing to measure).
pub(crate) fn span_begin() -> Option<SpanMem> {
    if !installed() {
        return None;
    }
    MEM.try_with(|mem| {
        let m = mem.get();
        mem.set(Mem {
            current: m.current,
            peak: m.current,
        });
        SpanMem {
            base_current: m.current,
            saved_peak: m.peak,
        }
    })
    .ok()
}

/// Close a span's accounting window: returns `(net, peak)` bytes
/// relative to the open, and restores the enclosing span's peak so
/// nesting composes (the outer peak is the max of both windows).
pub(crate) fn span_end(span: SpanMem) -> (i64, i64) {
    MEM.try_with(|mem| {
        let m = mem.get();
        let net = m.current - span.base_current;
        let peak = (m.peak - span.base_current).max(0);
        mem.set(Mem {
            current: m.current,
            peak: span.saved_peak.max(m.peak),
        });
        (net, peak)
    })
    .unwrap_or((0, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The real end-to-end test (with the wrapper installed as the global
    // allocator) lives in tests/alloc_accounting.rs — a separate test
    // binary, because `#[global_allocator]` is process-wide. Here we
    // drive the bookkeeping directly.

    #[test]
    fn span_windows_nest() {
        note(0); // mark installed so span_begin engages
        let outer = span_begin().expect("installed");
        note(1000);
        let inner = span_begin().unwrap();
        note(500);
        note(-500);
        let (inner_net, inner_peak) = span_end(inner);
        assert_eq!(inner_net, 0);
        assert_eq!(inner_peak, 500);
        note(-200);
        let (outer_net, outer_peak) = span_end(outer);
        assert_eq!(outer_net, 800);
        assert!(
            outer_peak >= 1500,
            "outer peak sees the inner span's high-water mark: {outer_peak}"
        );
    }
}

//! The event timeline: bounded per-thread trace buffers flushed to
//! Chrome/Perfetto trace-event JSON, plus the inverse parser and the
//! flame-table renderer behind `astra-mem trace`.
//!
//! Tracing is off by default and the off path is one relaxed atomic
//! load per span drop — cheap enough to leave the instrumentation in
//! every build (the bench driver pins this below 2 % of pipeline time).
//! When [`enable`]d, each completed span appends one event to a
//! thread-local buffer; the global sink mutex is only taken when a
//! buffer fills ([`THREAD_BUF_EVENTS`]) or its thread exits, so workers
//! never contend per-event.
//!
//! Timestamps are nanoseconds since the [`enable`] call (the trace
//! epoch). The Chrome format wants microseconds, so the writer renders
//! `ts`/`dur` as `µs` with three decimals — an exact representation of
//! the underlying nanosecond counts, which is what lets the flame
//! table's total-time column match the `time.*` histograms to the
//! nanosecond.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Per-thread buffer capacity, in events, before a flush to the global
/// sink. Bounds worst-case per-thread memory at roughly 100 B/event.
pub const THREAD_BUF_EVENTS: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// One completed span occurrence.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Full `/`-joined span path.
    pub path: String,
    /// Stable per-thread id, assigned in first-event order (1-based).
    pub tid: u64,
    /// Span start, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Counters attached via [`crate::SpanGuard::attach`] plus the
    /// allocator's `mem_peak_bytes` / `mem_net_bytes` deltas.
    pub args: Vec<(&'static str, i64)>,
}

struct ThreadBuf {
    tid: u64,
    events: Vec<TraceEvent>,
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        flush(&mut self.events);
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf {
            tid: 0,
            events: Vec::new(),
        })
    };
}

fn flush(events: &mut Vec<TraceEvent>) {
    if events.is_empty() {
        return;
    }
    SINK.lock()
        .unwrap_or_else(|e| e.into_inner())
        .append(events);
}

/// Turn the timeline on, process-wide and sticky. The first call pins
/// the trace epoch all timestamps are relative to.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether the timeline is recording. This load is the entire cost of
/// a span drop when tracing is off.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Append one completed span to the calling thread's buffer. No-op if
/// [`enable`] was never called or the thread's TLS is tearing down.
pub(crate) fn record(path: &str, start: Instant, dur_ns: u64, args: Vec<(&'static str, i64)>) {
    let Some(epoch) = EPOCH.get() else { return };
    let ts_ns = start
        .checked_duration_since(*epoch)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let _ = BUF.try_with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.tid == 0 {
            buf.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        let tid = buf.tid;
        buf.events.push(TraceEvent {
            path: path.to_string(),
            tid,
            ts_ns,
            dur_ns,
            args,
        });
        if buf.events.len() >= THREAD_BUF_EVENTS {
            let mut full = std::mem::take(&mut buf.events);
            flush(&mut full);
        }
    });
}

/// Drain every recorded event (global sink plus the calling thread's
/// buffer), sorted by start time. Buffers of still-running threads are
/// not visible; call this after joining workers — the scoped threads
/// `util::par` spawns flush on exit.
pub fn take_events() -> Vec<TraceEvent> {
    let _ = BUF.try_with(|buf| {
        let mut buf = buf.borrow_mut();
        let mut mine = std::mem::take(&mut buf.events);
        flush(&mut mine);
    });
    let mut events = std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()));
    events.sort_by(|a, b| (a.ts_ns, a.tid, &a.path).cmp(&(b.ts_ns, b.tid, &b.path)));
    events
}

/// Drain all events and render them as a Chrome trace-event JSON
/// document (load in `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn to_chrome_json() -> String {
    render_chrome_json(&take_events())
}

/// Render events as Chrome trace-event JSON: one complete (`"ph":"X"`)
/// event per span, named by its full path so nesting is readable even
/// for worker-thread tracks.
pub fn render_chrome_json(events: &[TraceEvent]) -> String {
    let pid = std::process::id();
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"astra\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{}",
            crate::export::escape_json(&event.path),
            event.tid,
            fmt_us(event.ts_ns),
            fmt_us(event.dur_ns),
        ));
        if !event.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (key, value)) in event.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{key}\":{value}"));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Nanoseconds rendered as the microseconds Chrome expects, keeping
/// nanosecond precision in the three decimals.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

// ---- reading a trace back --------------------------------------------

/// One event parsed back from a Chrome trace JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Full `/`-joined span path (the event name).
    pub path: String,
    /// Thread id.
    pub tid: u64,
    /// Start, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Attached counters.
    pub args: Vec<(String, i64)>,
}

/// Parse a Chrome trace-event JSON document as written by
/// [`to_chrome_json`]. Only complete (`"ph":"X"`) events are kept.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ParsedEvent>, String> {
    let tail = &text[text
        .find("\"traceEvents\"")
        .ok_or_else(|| "not a Chrome trace: no \"traceEvents\" key".to_string())?..];
    let open = tail
        .find('[')
        .ok_or_else(|| "malformed trace: no event array".to_string())?;
    let array = &tail[open + 1..];

    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut object_start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in array.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    object_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(start) = object_start.take() {
                        if let Some(event) = parse_event(&array[start..=i]) {
                            events.push(event);
                        }
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    Ok(events)
}

fn parse_event(object: &str) -> Option<ParsedEvent> {
    if crate::export::json_str(object, "ph")? != "X" {
        return None;
    }
    let path = crate::export::json_str(object, "name")?;
    let tid = crate::export::json_num(object, "tid")? as u64;
    let ts_ns = (crate::export::json_num(object, "ts")? * 1000.0).round() as u64;
    let dur_ns = (crate::export::json_num(object, "dur")? * 1000.0).round() as u64;
    let mut args = Vec::new();
    if let Some(at) = object.find("\"args\":{") {
        let body = &object[at + "\"args\":{".len()..];
        let end = body.find('}')?;
        for pair in body[..end].split(',') {
            let mut kv = pair.splitn(2, ':');
            let key = kv.next()?.trim().trim_matches('"').to_string();
            if let Ok(value) = kv.next()?.trim().parse::<i64>() {
                args.push((key, value));
            }
        }
    }
    Some(ParsedEvent {
        path,
        tid,
        ts_ns,
        dur_ns,
        args,
    })
}

// ---- flame table -----------------------------------------------------

/// Per-path aggregate for the flame table.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameRow {
    /// Full span path.
    pub path: String,
    /// Invocations.
    pub count: u64,
    /// Summed duration across invocations, ns. Matches the `time.<path>`
    /// histogram's `sum` exactly.
    pub total_ns: u64,
    /// Total minus the totals of direct children. Worker-thread children
    /// run concurrently with their parent, so this saturates at 0 when
    /// child time exceeds parent wall time.
    pub self_ns: u64,
    /// Largest `mem_peak_bytes` arg seen (0 when the allocator wrapper
    /// is not installed).
    pub mem_peak_bytes: i64,
    /// Summed `mem_net_bytes` args.
    pub mem_net_bytes: i64,
}

/// Aggregate parsed events into per-path flame rows, sorted by total
/// time descending.
pub fn flame_rows(events: &[ParsedEvent]) -> Vec<FlameRow> {
    use std::collections::BTreeMap;
    let mut by_path: BTreeMap<&str, FlameRow> = BTreeMap::new();
    for event in events {
        let row = by_path.entry(&event.path).or_insert_with(|| FlameRow {
            path: event.path.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            mem_peak_bytes: 0,
            mem_net_bytes: 0,
        });
        row.count += 1;
        row.total_ns += event.dur_ns;
        for (key, value) in &event.args {
            match key.as_str() {
                "mem_peak_bytes" => row.mem_peak_bytes = row.mem_peak_bytes.max(*value),
                "mem_net_bytes" => row.mem_net_bytes += *value,
                _ => {}
            }
        }
    }
    let totals: Vec<(String, u64)> = by_path
        .values()
        .map(|row| (row.path.clone(), row.total_ns))
        .collect();
    let mut rows: Vec<FlameRow> = by_path.into_values().collect();
    for row in &mut rows {
        let child_total: u64 = totals
            .iter()
            .filter(|(path, _)| is_direct_child(&row.path, path))
            .map(|(_, total)| *total)
            .sum();
        row.self_ns = row.total_ns.saturating_sub(child_total);
    }
    rows.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then_with(|| a.path.cmp(&b.path))
    });
    rows
}

fn is_direct_child(parent: &str, candidate: &str) -> bool {
    candidate
        .strip_prefix(parent)
        .and_then(|rest| rest.strip_prefix('/'))
        .is_some_and(|leaf| !leaf.contains('/'))
}

/// Render the aligned flame table for `astra-mem trace`.
pub fn flame_table(events: &[ParsedEvent]) -> String {
    let rows = flame_rows(events);
    let width = rows
        .iter()
        .map(|row| row.path.len())
        .max()
        .unwrap_or(0)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}\n",
        "path", "count", "total", "self", "mem peak", "mem net"
    ));
    for row in &rows {
        out.push_str(&format!(
            "{:<width$}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            row.path,
            row.count,
            crate::export::fmt_ns(row.total_ns),
            crate::export::fmt_ns(row.self_ns),
            fmt_bytes(row.mem_peak_bytes, false),
            fmt_bytes(row.mem_net_bytes, true),
        ));
    }
    out
}

/// Human byte count; `signed` adds an explicit `+` so net growth and
/// shrinkage read differently. Zero renders as `-` (not measured).
fn fmt_bytes(bytes: i64, signed: bool) -> String {
    if bytes == 0 {
        return "-".to_string();
    }
    let sign = if bytes < 0 {
        "-"
    } else if signed {
        "+"
    } else {
        ""
    };
    let abs = bytes.unsigned_abs() as f64;
    const KIB: f64 = 1024.0;
    if abs >= KIB * KIB * KIB {
        format!("{sign}{:.2}GiB", abs / (KIB * KIB * KIB))
    } else if abs >= KIB * KIB {
        format!("{sign}{:.1}MiB", abs / (KIB * KIB))
    } else if abs >= KIB {
        format!("{sign}{:.1}KiB", abs / KIB)
    } else {
        format!("{sign}{abs:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(path: &str, tid: u64, ts_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            path: path.to_string(),
            tid,
            ts_ns,
            dur_ns,
            args: Vec::new(),
        }
    }

    #[test]
    fn chrome_json_roundtrips_with_ns_precision() {
        let mut events = vec![
            event("pipeline.analyze", 1, 0, 5_000_123),
            event("pipeline.analyze/pipeline.consume", 1, 1_001, 2_000_999),
            event(
                "pipeline.analyze/pipeline.consume/consume.shard",
                2,
                1_500,
                999_001,
            ),
        ];
        events[0].args = vec![("records", 128), ("mem_net_bytes", -64)];
        let json = render_chrome_json(&events);
        let parsed = parse_chrome_trace(&json).expect("parse back");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].path, "pipeline.analyze");
        assert_eq!(parsed[0].ts_ns, 0);
        assert_eq!(parsed[0].dur_ns, 5_000_123, "ns survive the µs format");
        assert_eq!(
            parsed[0].args,
            vec![
                ("records".to_string(), 128),
                ("mem_net_bytes".to_string(), -64)
            ]
        );
        assert_eq!(parsed[2].tid, 2);
        assert_eq!(parsed[2].dur_ns, 999_001);
    }

    #[test]
    fn chrome_json_is_structurally_balanced() {
        // `parse_chrome_trace` splits on markers and shrugs off stray
        // braces, so it cannot catch malformed output that a strict
        // parser (Perfetto, python json.load in CI) rejects. Walk the
        // document and check every brace/bracket pairs up exactly.
        let mut events = vec![
            event("pipeline.analyze", 1, 0, 5_000),
            event("pipeline.analyze/pipeline.coalesce", 1, 10, 2_000),
        ];
        events[0].args = vec![("records", 7)];
        let json = render_chrome_json(&events);
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {json}");
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth, 0, "unbalanced document:\n{json}");
    }

    #[test]
    fn parse_rejects_non_traces() {
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("not json at all").is_err());
        // An empty trace is fine.
        assert_eq!(parse_chrome_trace("{\"traceEvents\":[]}").unwrap().len(), 0);
    }

    #[test]
    fn flame_rows_compute_self_time_from_direct_children() {
        let events = vec![
            event("root", 1, 0, 100),
            event("root/a", 1, 10, 30),
            event("root/a", 1, 50, 10),
            event("root/a/deep", 1, 12, 5),
            event("root/b", 1, 70, 20),
        ];
        let json = render_chrome_json(&events);
        let rows = flame_rows(&parse_chrome_trace(&json).unwrap());
        let get = |p: &str| rows.iter().find(|r| r.path == p).unwrap().clone();
        assert_eq!(get("root").total_ns, 100);
        // Direct children only: a (40) + b (20); deep belongs to a.
        assert_eq!(get("root").self_ns, 40);
        assert_eq!(get("root/a").count, 2);
        assert_eq!(get("root/a").self_ns, 35);
        assert_eq!(get("root/a/deep").self_ns, 5);
        assert_eq!(rows[0].path, "root", "sorted by total time");
    }

    #[test]
    fn flame_self_time_saturates_for_concurrent_children() {
        // Two workers each spend 80 ns under a 100 ns parent: child total
        // (160) exceeds the parent's wall time, so self clamps to 0.
        let events = vec![
            event("p", 1, 0, 100),
            event("p/w", 2, 5, 80),
            event("p/w", 3, 5, 80),
        ];
        let rows = flame_rows(&parse_chrome_trace(&render_chrome_json(&events)).unwrap());
        assert_eq!(rows.iter().find(|r| r.path == "p").unwrap().self_ns, 0);
    }

    #[test]
    fn flame_table_renders_memory_columns() {
        let mut e = event("stage", 1, 0, 1_000);
        e.args = vec![
            ("mem_peak_bytes", 3 * 1024 * 1024),
            ("mem_net_bytes", -2048),
        ];
        let table = flame_table(&parse_chrome_trace(&render_chrome_json(&[e])).unwrap());
        assert!(table.contains("3.0MiB"), "{table}");
        assert!(table.contains("-2.0KiB"), "{table}");
    }

    #[test]
    fn enabled_flag_gates_recording() {
        // Not enabled in this test binary unless another test flipped it;
        // record() without an epoch must be a silent no-op either way.
        record("never", Instant::now(), 1, Vec::new());
    }
}

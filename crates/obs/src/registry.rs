//! The metric registry: a named, typed map of counters, gauges, and
//! histograms.
//!
//! Registration is idempotent — `registry.counter("x")` returns a handle
//! to the same underlying atomic from every call site — so
//! instrumentation never coordinates. Names are sorted (BTreeMap), which
//! is what makes every export deterministic.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::export::Snapshot;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// What kind of metric a name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// Fixed-bucket histogram of sizes/counts.
    Histogram,
    /// Fixed-bucket histogram of span durations in nanoseconds. Timings
    /// are the one metric family exempt from the determinism guarantee.
    Timing,
}

impl MetricKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Timing => "timing",
        }
    }

    /// Inverse of [`MetricKind::name`].
    pub fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            "timing" => Some(MetricKind::Timing),
            _ => None,
        }
    }
}

/// A handle to one registered metric.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter handle.
    Counter(Counter),
    /// Gauge handle.
    Gauge(Gauge),
    /// Size histogram handle.
    Histogram(Histogram),
    /// Timing histogram handle.
    Timing(Histogram),
}

impl MetricValue {
    /// This handle's kind.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
            MetricValue::Timing(_) => MetricKind::Timing,
        }
    }
}

/// A thread-safe, name-keyed metric store.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, MetricValue>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Fetch or create the counter `name`.
    ///
    /// Panics if `name` is already registered as a different kind — a
    /// naming bug worth failing loudly on.
    pub fn counter(&self, name: &str) -> Counter {
        match self.fetch_or_insert(name, || MetricValue::Counter(Counter::default())) {
            MetricValue::Counter(c) => c,
            other => panic!("metric {name} is a {:?}, not a counter", other.kind()),
        }
    }

    /// Fetch or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.fetch_or_insert(name, || MetricValue::Gauge(Gauge::default())) {
            MetricValue::Gauge(g) => g,
            other => panic!("metric {name} is a {:?}, not a gauge", other.kind()),
        }
    }

    /// Fetch or create the size histogram `name`. `bounds` applies only
    /// on first registration; later calls get the existing buckets.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        match self.fetch_or_insert(name, || MetricValue::Histogram(Histogram::new(bounds))) {
            MetricValue::Histogram(h) => h,
            other => panic!("metric {name} is a {:?}, not a histogram", other.kind()),
        }
    }

    /// Fetch or create the timing histogram `name` (nanosecond buckets).
    pub fn timing(&self, name: &str) -> Histogram {
        match self.fetch_or_insert(name, || {
            MetricValue::Timing(Histogram::new(&crate::timing_bounds_ns()))
        }) {
            MetricValue::Timing(h) => h,
            other => panic!("metric {name} is a {:?}, not a timing", other.kind()),
        }
    }

    fn fetch_or_insert(&self, name: &str, make: impl FnOnce() -> MetricValue) -> MetricValue {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Remove every metric.
    pub fn clear(&self) {
        self.metrics.lock().expect("registry poisoned").clear();
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        Snapshot {
            entries: metrics
                .iter()
                .map(|(name, value)| (name.clone(), crate::export::freeze(value)))
                .collect(),
        }
    }

    /// Merge one exported metric into this registry (counters and
    /// histogram counts add; gauges overwrite). Used to fold a dataset's
    /// generation-time `metrics.jsonl` into an analysis run.
    pub fn absorb(&self, name: &str, kind: MetricKind, value: &AbsorbValue) {
        match (kind, value) {
            (MetricKind::Counter, AbsorbValue::Scalar(v)) => {
                self.counter(name).add(*v as u64);
            }
            (MetricKind::Gauge, AbsorbValue::Scalar(v)) => self.gauge(name).set(*v),
            (MetricKind::Histogram, AbsorbValue::Histogram(snap)) => {
                self.histogram(name, &snap.bounds).merge_snapshot(snap)
            }
            (MetricKind::Timing, AbsorbValue::Histogram(snap)) => {
                self.timing(name).merge_snapshot(snap)
            }
            _ => {} // kind/value mismatch: drop rather than corrupt
        }
    }
}

/// A parsed metric value ready to be [`Registry::absorb`]ed.
#[derive(Debug, Clone)]
pub enum AbsorbValue {
    /// Counter or gauge payload.
    Scalar(f64),
    /// Histogram or timing payload.
    Histogram(HistogramSnapshot),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        r.counter("a.x").add(2);
        r.counter("a.x").add(3);
        assert_eq!(r.counter("a.x").get(), 5);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("a.x");
        r.gauge("a.x");
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.counter("z.last").inc();
        r.counter("a.first").inc();
        r.gauge("m.middle").set(1.0);
        let snapshot = r.snapshot();
        let names: Vec<&str> = snapshot.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn clear_empties_registry() {
        let r = Registry::new();
        r.counter("a").inc();
        r.clear();
        assert!(r.snapshot().entries.is_empty());
        assert_eq!(r.counter("a").get(), 0, "re-registration starts fresh");
    }

    #[test]
    fn absorb_adds_counters_and_merges_histograms() {
        let r = Registry::new();
        r.counter("c").add(1);
        r.absorb("c", MetricKind::Counter, &AbsorbValue::Scalar(41.0));
        assert_eq!(r.counter("c").get(), 42);

        let h = Histogram::new(&[10]);
        h.record(3);
        r.absorb(
            "h",
            MetricKind::Histogram,
            &AbsorbValue::Histogram(h.snapshot()),
        );
        assert_eq!(r.histogram("h", &[10]).snapshot().count, 1);
    }
}

//! RAII span timers with hierarchical stage paths.
//!
//! `let _s = obs::span("parse.ce");` times the enclosing scope. Spans
//! opened while another span is live on the same thread nest: their
//! timing is recorded under the `/`-joined path of active span names
//! (`time.analyze/parse.ce`), giving per-stage wall-time broken down by
//! call context. The histogram's `count` doubles as the number of times
//! the stage ran.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::Registry;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Open a span on the [global registry](crate::global). Dropping the
/// guard records the elapsed time under `time.<path>`.
pub fn span(name: &str) -> SpanGuard<'static> {
    span_in(crate::global(), name)
}

/// Open a span recording into an explicit registry (tests, or tools
/// holding several registries).
pub fn span_in<'a>(registry: &'a Registry, name: &str) -> SpanGuard<'a> {
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_string());
        stack.join("/")
    });
    SpanGuard {
        registry,
        path,
        start: Instant::now(),
    }
}

/// Live span; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    path: String,
    start: Instant,
}

impl SpanGuard<'_> {
    /// The full hierarchical path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry
            .timing(&format!("time.{}", self.path))
            .record(elapsed_ns);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = Registry::new();
        {
            let guard = span_in(&registry, "stage");
            assert_eq!(guard.path(), "stage");
        }
        let snap = registry.timing("time.stage").snapshot();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn nested_spans_build_paths() {
        let registry = Registry::new();
        {
            let _outer = span_in(&registry, "analyze");
            {
                let inner = span_in(&registry, "coalesce");
                assert_eq!(inner.path(), "analyze/coalesce");
            }
            {
                let inner2 = span_in(&registry, "spatial");
                assert_eq!(inner2.path(), "analyze/spatial", "stack popped correctly");
            }
        }
        // Fresh top-level span after everything closed.
        {
            let top = span_in(&registry, "report");
            assert_eq!(top.path(), "report");
        }
        assert_eq!(registry.timing("time.analyze/coalesce").snapshot().count, 1);
        assert_eq!(registry.timing("time.analyze/spatial").snapshot().count, 1);
        assert_eq!(registry.timing("time.analyze").snapshot().count, 1);
    }

    #[test]
    fn repeated_spans_accumulate_counts() {
        let registry = Registry::new();
        for _ in 0..5 {
            let _s = span_in(&registry, "loop");
        }
        assert_eq!(registry.timing("time.loop").snapshot().count, 5);
    }
}

//! RAII span timers with hierarchical stage paths.
//!
//! `let _s = obs::span("parse.ce");` times the enclosing scope. Spans
//! opened while another span is live on the same thread nest: their
//! timing is recorded under the `/`-joined path of active span names
//! (`time.analyze/parse.ce`), giving per-stage wall-time broken down by
//! call context. The histogram's `count` doubles as the number of times
//! the stage ran.
//!
//! Paths cross threads explicitly: [`current_path`] captures the
//! caller's joined path and [`inherit_path`] installs it as the root of
//! a worker's stack, so spans opened on the worker nest under the
//! caller's stage instead of recording rootless paths. `util::par` does
//! this for every task it spawns.
//!
//! When the [trace timeline](crate::trace) is enabled, each drop also
//! emits one timeline event carrying any counters attached via
//! [`SpanGuard::attach`] and — if the [`crate::CountingAlloc`] wrapper
//! is installed — the span's net and peak allocation deltas, which are
//! additionally surfaced as `mem.<path>.net_bytes` /
//! `mem.<path>.peak_bytes` gauges. Both are per-run profiling outputs
//! and exempt from the determinism guarantee, like `time.*`.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::Registry;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Open a span on the [global registry](crate::global). Dropping the
/// guard records the elapsed time under `time.<path>`.
pub fn span(name: &str) -> SpanGuard<'static> {
    span_in(crate::global(), name)
}

/// Open a span recording into an explicit registry (tests, or tools
/// holding several registries).
pub fn span_in<'a>(registry: &'a Registry, name: &str) -> SpanGuard<'a> {
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_string());
        stack.join("/")
    });
    let mem = if crate::trace::is_enabled() {
        crate::alloc::span_begin()
    } else {
        None
    };
    SpanGuard {
        registry,
        path,
        start: Instant::now(),
        args: Vec::new(),
        mem,
    }
}

/// The calling thread's current `/`-joined span path, if any span is
/// open. Capture this before handing work to another thread and install
/// it there with [`inherit_path`].
pub fn current_path() -> Option<String> {
    SPAN_STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("/"))
        }
    })
}

/// Install a path captured by [`current_path`] as the root of this
/// thread's span stack, so subsequently opened spans nest under it. The
/// guard removes the root on drop. `None` (no span was open on the
/// caller) installs nothing and is not an error — workers then record
/// rooted-at-top-level paths, same as the caller would.
pub fn inherit_path(path: Option<&str>) -> InheritGuard {
    let installed = match path {
        Some(p) if !p.is_empty() => {
            SPAN_STACK.with(|stack| stack.borrow_mut().push(p.to_string()));
            true
        }
        _ => false,
    };
    InheritGuard { installed }
}

/// Guard from [`inherit_path`]; pops the inherited root on drop.
#[derive(Debug)]
pub struct InheritGuard {
    installed: bool,
}

impl Drop for InheritGuard {
    fn drop(&mut self) {
        if self.installed {
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// Live span; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    path: String,
    start: Instant,
    args: Vec<(&'static str, i64)>,
    mem: Option<crate::alloc::SpanMem>,
}

impl SpanGuard<'_> {
    /// The full hierarchical path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Attach a counter to this span's timeline event (records parsed,
    /// lines quarantined, …). No-op while tracing is disabled, so call
    /// sites attach unconditionally.
    pub fn attach(&mut self, key: &'static str, value: i64) {
        if crate::trace::is_enabled() {
            self.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        // One elapsed reading feeds both the histogram and the timeline
        // event, so the flame table's totals match `time.*` exactly.
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry
            .timing(&format!("time.{}", self.path))
            .record(elapsed_ns);
        if let Some(mem) = self.mem.take() {
            let (net, peak) = crate::alloc::span_end(mem);
            self.registry
                .gauge(&format!("mem.{}.peak_bytes", self.path))
                .set_max(peak as f64);
            self.registry
                .gauge(&format!("mem.{}.net_bytes", self.path))
                .set(net as f64);
            self.args.push(("mem_peak_bytes", peak));
            self.args.push(("mem_net_bytes", net));
        }
        if crate::trace::is_enabled() {
            crate::trace::record(
                &self.path,
                self.start,
                elapsed_ns,
                std::mem::take(&mut self.args),
            );
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = Registry::new();
        {
            let guard = span_in(&registry, "stage");
            assert_eq!(guard.path(), "stage");
        }
        let snap = registry.timing("time.stage").snapshot();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn nested_spans_build_paths() {
        let registry = Registry::new();
        {
            let _outer = span_in(&registry, "analyze");
            {
                let inner = span_in(&registry, "coalesce");
                assert_eq!(inner.path(), "analyze/coalesce");
            }
            {
                let inner2 = span_in(&registry, "spatial");
                assert_eq!(inner2.path(), "analyze/spatial", "stack popped correctly");
            }
        }
        // Fresh top-level span after everything closed.
        {
            let top = span_in(&registry, "report");
            assert_eq!(top.path(), "report");
        }
        assert_eq!(registry.timing("time.analyze/coalesce").snapshot().count, 1);
        assert_eq!(registry.timing("time.analyze/spatial").snapshot().count, 1);
        assert_eq!(registry.timing("time.analyze").snapshot().count, 1);
    }

    #[test]
    fn repeated_spans_accumulate_counts() {
        let registry = Registry::new();
        for _ in 0..5 {
            let _s = span_in(&registry, "loop");
        }
        assert_eq!(registry.timing("time.loop").snapshot().count, 5);
    }

    #[test]
    fn inherited_path_roots_worker_spans() {
        let registry = Registry::new();
        {
            let _outer = span_in(&registry, "analyze");
            let _mid = span_in(&registry, "parse.ce");
            let captured = current_path();
            assert_eq!(captured.as_deref(), Some("analyze/parse.ce"));
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _root = inherit_path(captured.as_deref());
                    let worker = span_in(&registry, "shard");
                    assert_eq!(worker.path(), "analyze/parse.ce/shard");
                });
            });
        }
        assert_eq!(
            registry
                .timing("time.analyze/parse.ce/shard")
                .snapshot()
                .count,
            1,
            "worker span nests under the caller's stage"
        );
    }

    #[test]
    fn inherit_none_is_a_no_op() {
        let registry = Registry::new();
        {
            let _root = inherit_path(None);
            let s = span_in(&registry, "solo");
            assert_eq!(s.path(), "solo");
        }
        // The guard must not pop anything it did not push.
        assert_eq!(current_path(), None);
    }

    #[test]
    fn inherit_guard_restores_the_stack() {
        {
            let _root = inherit_path(Some("a/b"));
            assert_eq!(current_path().as_deref(), Some("a/b"));
        }
        assert_eq!(current_path(), None);
    }
}

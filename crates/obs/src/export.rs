//! Exporters: a human-readable table and machine-readable JSON-lines,
//! plus the inverse parser used to fold a dataset's generation-time
//! metrics back into an analysis run.
//!
//! One JSON object per line, schema by kind:
//!
//! ```text
//! {"name":"parse.ce.lines_ok","kind":"counter","value":4096}
//! {"name":"coalesce.ratio","kind":"gauge","value":0.0123}
//! {"name":"faultsim.node_drops","kind":"histogram","count":64,"sum":128,
//!  "min":0,"max":32,"p50":1,"p95":4,"p99":30,
//!  "bounds":[1,4,16],"buckets":[60,2,1,1]}
//! ```
//!
//! The schema is append-only: consumers must ignore unknown keys, and
//! the `kind` field is the dispatch point. Lines are sorted by metric
//! name, so exports of deterministic metrics diff cleanly across runs.

use crate::metrics::HistogramSnapshot;
use crate::registry::{AbsorbValue, MetricKind, MetricValue, Registry};

/// One metric's frozen value.
#[derive(Debug, Clone)]
pub enum Frozen {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Size histogram state.
    Histogram(HistogramSnapshot),
    /// Timing histogram state (nanoseconds).
    Timing(HistogramSnapshot),
}

impl Frozen {
    /// The metric kind this value belongs to.
    pub fn kind(&self) -> MetricKind {
        match self {
            Frozen::Counter(_) => MetricKind::Counter,
            Frozen::Gauge(_) => MetricKind::Gauge,
            Frozen::Histogram(_) => MetricKind::Histogram,
            Frozen::Timing(_) => MetricKind::Timing,
        }
    }
}

pub(crate) fn freeze(value: &MetricValue) -> Frozen {
    match value {
        MetricValue::Counter(c) => Frozen::Counter(c.get()),
        MetricValue::Gauge(g) => Frozen::Gauge(g.get()),
        MetricValue::Histogram(h) => Frozen::Histogram(h.snapshot()),
        MetricValue::Timing(h) => Frozen::Timing(h.snapshot()),
    }
}

/// A point-in-time copy of a whole registry, sorted by metric name.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(name, value)` pairs in name order.
    pub entries: Vec<(String, Frozen)>,
}

impl Snapshot {
    /// Look up one frozen metric by name.
    pub fn get(&self, name: &str) -> Option<&Frozen> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name (0 when absent — absent means "never
    /// happened" for every counter this workspace registers).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Frozen::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by name (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(Frozen::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Total seconds recorded under the timing `name` (0.0 when absent).
    pub fn timing_secs(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(Frozen::Timing(snap)) => snap.sum as f64 / 1e9,
            _ => 0.0,
        }
    }

    /// Render as JSON-lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            render_jsonl_line(&mut out, name, value);
            out.push('\n');
        }
        out
    }

    /// Render in Prometheus text exposition format.
    ///
    /// Metric names are sanitized to the Prometheus charset (`.` and any
    /// other non-`[A-Za-z0-9_]` byte become `_`); counters gain the
    /// conventional `_total` suffix; timing histograms are exported in
    /// seconds under a `_seconds` name; size histograms keep their raw
    /// units. Bucket counts are cumulative with a trailing `+Inf` bucket,
    /// as the format requires.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            let base = prometheus_name(name);
            match value {
                Frozen::Counter(v) => {
                    out.push_str(&format!("# TYPE {base}_total counter\n{base}_total {v}\n"));
                }
                Frozen::Gauge(v) => {
                    let rendered = if v.is_finite() {
                        format!("{v}")
                    } else {
                        "NaN".to_string()
                    };
                    out.push_str(&format!("# TYPE {base} gauge\n{base} {rendered}\n"));
                }
                Frozen::Histogram(s) => {
                    render_prometheus_histogram(&mut out, &base, s, |bound| bound.to_string(), 1.0);
                }
                Frozen::Timing(s) => {
                    // Nanoseconds internally, seconds on the wire — the
                    // Prometheus convention for duration histograms.
                    render_prometheus_histogram(
                        &mut out,
                        &format!("{base}_seconds"),
                        s,
                        |bound| format!("{}", bound as f64 / 1e9),
                        1e-9,
                    );
                }
            }
        }
        out
    }

    /// Render as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        out.push_str(&format!("{:<width$}  {:<9}  value\n", "metric", "kind"));
        for (name, value) in &self.entries {
            let rendered = match value {
                Frozen::Counter(v) => format!("{v}"),
                Frozen::Gauge(v) => format!("{v:.4}"),
                Frozen::Histogram(s) => format!(
                    "n={} sum={} min={} mean={:.1} p50={} p95={} p99={} max={}",
                    s.count,
                    s.sum,
                    s.min,
                    s.mean(),
                    s.p50(),
                    s.p95(),
                    s.p99(),
                    s.max
                ),
                Frozen::Timing(s) => format!(
                    "n={} total={} mean={} p50={} p95={} p99={} max={}",
                    s.count,
                    fmt_ns(s.sum),
                    fmt_ns(s.mean() as u64),
                    fmt_ns(s.p50()),
                    fmt_ns(s.p95()),
                    fmt_ns(s.p99()),
                    fmt_ns(s.max)
                ),
            };
            out.push_str(&format!(
                "{name:<width$}  {:<9}  {rendered}\n",
                value.kind().name()
            ));
        }
        out
    }
}

/// A metric name restricted to the Prometheus charset: every byte
/// outside `[A-Za-z0-9_]` becomes `_`, and a leading digit gets a `_`
/// prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// One Prometheus histogram block: cumulative `_bucket` series with a
/// `+Inf` terminator, then `_sum` and `_count`. `bound_label` renders a
/// bound for the `le` label; `sum_scale` converts the internal sum unit
/// (e.g. 1e-9 for nanoseconds → seconds).
fn render_prometheus_histogram(
    out: &mut String,
    base: &str,
    s: &HistogramSnapshot,
    bound_label: impl Fn(u64) -> String,
    sum_scale: f64,
) {
    out.push_str(&format!("# TYPE {base} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &n) in s.buckets.iter().enumerate() {
        cumulative += n;
        let le = match s.bounds.get(i) {
            Some(&bound) => bound_label(bound),
            None => "+Inf".to_string(),
        };
        out.push_str(&format!("{base}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    if s.buckets.is_empty() {
        out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} 0\n"));
    }
    let sum = if sum_scale == 1.0 {
        format!("{}", s.sum)
    } else {
        format!("{}", s.sum as f64 * sum_scale)
    };
    out.push_str(&format!("{base}_sum {sum}\n{base}_count {}\n", s.count));
}

/// Escape `s` for embedding inside a JSON string literal (surrounding
/// quotes not included). Public so downstream crates that hand-assemble
/// JSON (the serve daemon's site summaries) escape identically to this
/// exporter.
pub fn escape_json_str(s: &str) -> String {
    escape_json(s)
}

/// Human duration from nanoseconds.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn render_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

fn render_jsonl_line(out: &mut String, name: &str, value: &Frozen) {
    let name = escape_json(name);
    match value {
        Frozen::Counter(v) => {
            out.push_str(&format!(
                r#"{{"name":"{name}","kind":"counter","value":{v}}}"#
            ));
        }
        Frozen::Gauge(v) => {
            out.push_str(&format!(
                r#"{{"name":"{name}","kind":"gauge","value":{}}}"#,
                render_f64(*v)
            ));
        }
        Frozen::Histogram(s) | Frozen::Timing(s) => {
            // p50/p95/p99 are derived from the buckets; the importer
            // ignores them and re-derives, so roundtrips stay exact.
            let kind = value.kind().name();
            out.push_str(&format!(
                r#"{{"name":"{name}","kind":"{kind}","count":{},"sum":{},"min":{},"max":{},"p50":{},"p95":{},"p99":{},"bounds":{},"buckets":{}}}"#,
                s.count,
                s.sum,
                s.min,
                s.max,
                s.p50(),
                s.p95(),
                s.p99(),
                render_u64_array(&s.bounds),
                render_u64_array(&s.buckets),
            ));
        }
    }
}

// ---- import ----------------------------------------------------------

/// Extract and unescape the string value of `"key":"…"` from one JSON
/// line. Shared with the trace parser and the threshold-file parser.
pub(crate) fn json_str(line: &str, key: &str) -> Option<String> {
    let pattern = format!("\"{key}\":\"");
    let start = line.find(&pattern)? + pattern.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let value = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(value)?);
                }
                'n' => out.push('\n'),
                't' => out.push('\t'),
                escaped => out.push(escaped),
            },
            c => out.push(c),
        }
    }
}

/// Extract the numeric value of `"key":N` from one JSON line.
pub(crate) fn json_num(line: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\":");
    let start = line.find(&pattern)? + pattern.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the `u64` array value of `"key":[…]` from one JSON line.
fn json_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let pattern = format!("\"{key}\":[");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest.find(']')?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|v| v.trim().parse().ok()).collect()
}

/// Parse one exported line back into `(name, kind, value)`.
pub fn parse_jsonl_line(line: &str) -> Option<(String, MetricKind, AbsorbValue)> {
    let name = json_str(line, "name")?;
    let kind = MetricKind::parse(&json_str(line, "kind")?)?;
    let value = match kind {
        MetricKind::Counter | MetricKind::Gauge => {
            AbsorbValue::Scalar(json_num(line, "value").unwrap_or(0.0))
        }
        MetricKind::Histogram | MetricKind::Timing => AbsorbValue::Histogram(HistogramSnapshot {
            bounds: json_u64_array(line, "bounds")?,
            buckets: json_u64_array(line, "buckets")?,
            count: json_num(line, "count")? as u64,
            sum: json_num(line, "sum")? as u64,
            min: json_num(line, "min")? as u64,
            max: json_num(line, "max")? as u64,
        }),
    };
    Some((name, kind, value))
}

impl Registry {
    /// Fold a JSON-lines export (as written by [`Snapshot::to_jsonl`])
    /// into this registry. Unparseable lines are counted, not fatal —
    /// the same contract the log readers follow.
    pub fn import_jsonl(&self, text: &str) -> u64 {
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_jsonl_line(line) {
                Some((name, kind, value)) => self.absorb(&name, kind, &value),
                None => skipped += 1,
            }
        }
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("parse.ce.lines_ok").add(4096);
        r.gauge("coalesce.ratio").set(0.0123);
        let h = r.histogram("faultsim.node_drops", &[1, 4, 16]);
        h.record(0);
        h.record(3);
        h.record(100);
        r
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let jsonl = sample_registry().snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // Sorted by name, one object per line, exact rendering pinned:
        // this is the schema consumers depend on.
        assert_eq!(
            lines,
            vec![
                r#"{"name":"coalesce.ratio","kind":"gauge","value":0.0123}"#,
                r#"{"name":"faultsim.node_drops","kind":"histogram","count":3,"sum":103,"min":0,"max":100,"p50":4,"p95":100,"p99":100,"bounds":[1,4,16],"buckets":[1,1,0,1]}"#,
                r#"{"name":"parse.ce.lines_ok","kind":"counter","value":4096}"#,
            ]
        );
    }

    #[test]
    fn jsonl_roundtrips_through_import() {
        let jsonl = sample_registry().snapshot().to_jsonl();
        let restored = Registry::new();
        assert_eq!(restored.import_jsonl(&jsonl), 0);
        assert_eq!(restored.snapshot().to_jsonl(), jsonl);
    }

    #[test]
    fn import_skips_garbage_lines() {
        let r = Registry::new();
        let skipped = r.import_jsonl(
            "{\"name\":\"ok\",\"kind\":\"counter\",\"value\":1}\nnot json\n\n{\"kind\":\"counter\"}\n",
        );
        assert_eq!(skipped, 2);
        assert_eq!(r.counter("ok").get(), 1);
    }

    #[test]
    fn import_accumulates_counters() {
        let r = Registry::new();
        let line = "{\"name\":\"c\",\"kind\":\"counter\",\"value\":10}\n";
        r.import_jsonl(line);
        r.import_jsonl(line);
        assert_eq!(r.counter("c").get(), 20);
    }

    #[test]
    fn prometheus_rendering_is_pinned() {
        let text = sample_registry().snapshot().to_prometheus();
        assert_eq!(
            text,
            "# TYPE coalesce_ratio gauge\n\
             coalesce_ratio 0.0123\n\
             # TYPE faultsim_node_drops histogram\n\
             faultsim_node_drops_bucket{le=\"1\"} 1\n\
             faultsim_node_drops_bucket{le=\"4\"} 2\n\
             faultsim_node_drops_bucket{le=\"16\"} 2\n\
             faultsim_node_drops_bucket{le=\"+Inf\"} 3\n\
             faultsim_node_drops_sum 103\n\
             faultsim_node_drops_count 3\n\
             # TYPE parse_ce_lines_ok_total counter\n\
             parse_ce_lines_ok_total 4096\n"
        );
    }

    #[test]
    fn prometheus_timings_convert_to_seconds() {
        let r = Registry::new();
        let t = r.timing("serve.request");
        t.record(2_000_000_000); // 2s
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("# TYPE serve_request_seconds histogram"),
            "{text}"
        );
        assert!(text.contains("serve_request_seconds_sum 2\n"), "{text}");
        assert!(text.contains("serve_request_seconds_count 1\n"), "{text}");
        assert!(
            text.contains("serve_request_seconds_bucket{le=\"0.001024\"}"),
            "timing bounds must be rendered in seconds: {text}"
        );
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn table_lists_every_metric() {
        let table = sample_registry().snapshot().to_table();
        assert!(table.contains("parse.ce.lines_ok"));
        assert!(table.contains("coalesce.ratio"));
        assert!(table.contains("faultsim.node_drops"));
        assert!(table.contains("counter"));
        assert!(table.contains("n=3"));
    }

    #[test]
    fn snapshot_accessors() {
        let snap = sample_registry().snapshot();
        assert_eq!(snap.counter("parse.ce.lines_ok"), 4096);
        assert_eq!(snap.counter("missing"), 0);
        assert!((snap.gauge("coalesce.ratio") - 0.0123).abs() < 1e-12);
        assert_eq!(snap.timing_secs("missing"), 0.0);
    }

    #[test]
    fn escaped_names_roundtrip() {
        let r = Registry::new();
        r.counter("weird\"name\\x").inc();
        let jsonl = r.snapshot().to_jsonl();
        let restored = Registry::new();
        assert_eq!(restored.import_jsonl(&jsonl), 0);
        assert_eq!(restored.counter("weird\"name\\x").get(), 1);
    }
}

//! Observability for the astra-mem pipeline.
//!
//! The paper's methodology hinges on knowing what the measurement
//! apparatus dropped: §2.3 models a lossy bounded kernel log buffer, and
//! the field studies it builds on stress that uninstrumented collection
//! pipelines silently bias failure rates. This crate turns the
//! reproduction's own pipeline into an instrumented system: every stage
//! (simulate → parse → coalesce → aggregate → report) publishes counters,
//! gauges, and histograms into a process-wide [`Registry`], and wall-time
//! is captured with RAII [`span`] timers that nest into hierarchical
//! stage paths.
//!
//! Design rules:
//!
//! - **Zero dependencies.** Only `std`; the crate sits below every other
//!   workspace crate.
//! - **Metric naming** follows `stage.metric` (e.g. `parse.ce.lines_ok`,
//!   `faultsim.ces_dropped`, `coalesce.faults_out`). Span timings are
//!   registered under `time.<path>` where `<path>` is the `/`-joined
//!   nesting of active span names on the thread.
//! - **Determinism.** Everything except `timing` metrics is a pure
//!   function of the workload `(racks, seed, input)`, so two runs over
//!   the same dataset export identical non-timing lines — the property
//!   the integration tests pin down. The opt-in profiling outputs (the
//!   [`trace`] timeline and the `mem.*` gauges) are per-run wall-clock
//!   artifacts and share the timing exemption.
//!
//! Beyond aggregates, the crate carries a full profiling layer: the
//! [`trace`] module records an event timeline (flushed to
//! Chrome/Perfetto JSON and rendered as a flame table), the
//! [`CountingAlloc`] wrapper attributes allocation deltas to spans, and
//! [`check`] gates live metrics against a checked-in threshold file.
//! Span paths cross worker threads via [`current_path`] /
//! [`inherit_path`].
//!
//! ```
//! let registry = astra_obs::global();
//! registry.counter("parse.ce.lines_ok").add(128);
//! {
//!     let _outer = astra_obs::span("analyze");
//!     let _inner = astra_obs::span("coalesce"); // records time.analyze/coalesce
//! }
//! let jsonl = registry.snapshot().to_jsonl();
//! assert!(jsonl.contains("parse.ce.lines_ok"));
//! ```

// `deny`, not `forbid`: the allocator wrapper module opts back in with
// a scoped `allow` — `GlobalAlloc` cannot be implemented without it.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod check;
mod export;
mod metrics;
mod registry;
mod span;
pub mod trace;

pub use alloc::CountingAlloc;
pub use check::{check, merged_stage_timing, CheckReport, CheckResult, Rule, Thresholds};
pub use export::{escape_json_str, Frozen, Snapshot};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricKind, MetricValue, Registry};
pub use span::{current_path, inherit_path, span, span_in, InheritGuard, SpanGuard};

use std::sync::OnceLock;

/// The process-wide registry all pipeline instrumentation writes to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Drop every metric in the [`global`] registry.
///
/// Handles obtained before the reset keep working but are no longer
/// exported; call sites that re-fetch by name (the crate's idiom) see
/// fresh zeroed metrics.
pub fn reset_global() {
    global().clear();
}

/// Default bucket upper bounds for span timings, in nanoseconds:
/// 1 µs · 4^k for 13 buckets (1 µs … ≈ 16.8 s), plus the implicit
/// overflow bucket.
pub fn timing_bounds_ns() -> Vec<u64> {
    (0..13).map(|k| 1_000u64 * 4u64.pow(k)).collect()
}

/// Default bucket upper bounds for size/count histograms: powers of 4
/// from 1 to 4^12 (≈ 16.8 M), plus the implicit overflow bucket.
pub fn size_bounds() -> Vec<u64> {
    (0..13).map(|k| 4u64.pow(k)).collect()
}

//! Hammer one [`astra_obs::Registry`] from many threads at once:
//! counters, gauges, histograms, and nested spans. The registry promises
//! exact counts (no lost updates) and well-formed span paths (the span
//! stack is thread-local, so concurrent nesting must never interleave
//! another thread's segments into a path).

use std::sync::Barrier;

use astra_obs::{Frozen, Registry};

const THREADS: usize = 8;
const ITERS: u64 = 2_000;

#[test]
fn counters_gauges_and_histograms_are_exact_under_contention() {
    let registry = Registry::new();
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..ITERS {
                    registry.counter("shared.count").add(1);
                    registry.counter(&format!("per_thread.{t}")).add(2);
                    registry
                        .gauge("shared.max")
                        .set_max((t as u64 * ITERS + i) as f64);
                    registry
                        .histogram("shared.sizes", &[10, 100, 1000])
                        .record(i % 7);
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.counter("shared.count"), THREADS as u64 * ITERS);
    for t in 0..THREADS {
        assert_eq!(snap.counter(&format!("per_thread.{t}")), 2 * ITERS);
    }
    assert_eq!(
        snap.gauge("shared.max"),
        (THREADS as u64 * ITERS - 1) as f64,
        "set_max keeps the global maximum"
    );
    let Some(Frozen::Histogram(h)) = snap.get("shared.sizes") else {
        panic!("histogram missing");
    };
    assert_eq!(h.count, THREADS as u64 * ITERS);
    // Every thread records the same 0..7 cycle, so the sum is exact.
    let cycle: u64 = (0..ITERS).map(|i| i % 7).sum();
    assert_eq!(h.sum, THREADS as u64 * cycle);
}

#[test]
fn nested_spans_from_many_threads_never_tear_paths() {
    let registry = Registry::new();
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..200 {
                    let _outer = astra_obs::span_in(registry, &format!("outer{t}"));
                    let _mid = astra_obs::span_in(registry, "mid");
                    let _inner = astra_obs::span_in(registry, "inner");
                }
            });
        }
    });
    let snap = registry.snapshot();
    let mut timing_names: Vec<&str> = snap
        .entries
        .iter()
        .filter(|(_, f)| matches!(f, Frozen::Timing(_)))
        .map(|(n, _)| n.as_str())
        .collect();
    timing_names.sort_unstable();
    // Exactly three paths per thread — a torn path (another thread's
    // segment spliced in, or a missing root) would add extra names.
    assert_eq!(timing_names.len(), 3 * THREADS, "{timing_names:?}");
    for t in 0..THREADS {
        for path in [
            format!("time.outer{t}"),
            format!("time.outer{t}/mid"),
            format!("time.outer{t}/mid/inner"),
        ] {
            let Some(Frozen::Timing(h)) = snap.get(&path) else {
                panic!("missing {path}; have {timing_names:?}");
            };
            assert_eq!(h.count, 200, "{path}");
        }
    }
}

#[test]
fn inherited_paths_stay_thread_local_under_contention() {
    // Each thread inherits a different root, then spans under it; the
    // inherited prefix must never leak across threads.
    let registry = Registry::new();
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let root = format!("job{t}/stage");
                for _ in 0..200 {
                    let _root = astra_obs::inherit_path(Some(&root));
                    let _work = astra_obs::span_in(registry, "work");
                }
            });
        }
    });
    let snap = registry.snapshot();
    for t in 0..THREADS {
        let Some(Frozen::Timing(h)) = snap.get(&format!("time.job{t}/stage/work")) else {
            panic!("missing inherited path for thread {t}");
        };
        assert_eq!(h.count, 200);
    }
    assert_eq!(
        snap.entries.len(),
        THREADS,
        "only the {THREADS} inherited paths exist: {:?}",
        snap.entries.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
}

//! End-to-end allocator accounting: this test binary installs
//! [`astra_obs::CountingAlloc`] as its global allocator (exactly like
//! the `astra-mem` binary does), so span memory windows observe real
//! heap traffic. It lives in its own integration-test binary because a
//! global allocator is process-wide.

#[global_allocator]
static ALLOC: astra_obs::CountingAlloc = astra_obs::CountingAlloc::new();

use astra_obs::{Frozen, Registry};

#[test]
fn spans_observe_real_heap_allocations() {
    // Tracing gates the mem gauges; enable it for the whole binary.
    astra_obs::trace::enable();
    let registry = Registry::new();
    {
        let _span = astra_obs::span_in(&registry, "alloc_stage");
        let buf = vec![0u8; 1 << 20];
        std::hint::black_box(&buf);
    }
    let snap = registry.snapshot();
    let peak = snap.gauge("mem.alloc_stage.peak_bytes");
    assert!(
        peak >= (1 << 20) as f64,
        "peak gauge must cover the 1 MiB buffer, got {peak}"
    );
    // The buffer dropped inside the span, so net is far below peak.
    let net = snap.gauge("mem.alloc_stage.net_bytes");
    assert!(net < peak, "net {net} should be below peak {peak}");
}

#[test]
fn leaked_memory_shows_up_as_net_growth() {
    astra_obs::trace::enable();
    let registry = Registry::new();
    let kept;
    {
        let _span = astra_obs::span_in(&registry, "retaining_stage");
        kept = vec![42u8; 512 * 1024];
    }
    let snap = registry.snapshot();
    let net = snap.gauge("mem.retaining_stage.net_bytes");
    assert!(
        net >= (512 * 1024) as f64,
        "memory retained past the span must appear as net growth, got {net}"
    );
    std::hint::black_box(&kept);
}

#[test]
fn traced_spans_carry_memory_args() {
    astra_obs::trace::enable();
    let registry = Registry::new();
    {
        let _span = astra_obs::span_in(&registry, "traced_alloc");
        std::hint::black_box(vec![0u64; 65_536]);
    }
    let events = astra_obs::trace::take_events();
    let event = events
        .iter()
        .find(|e| e.path == "traced_alloc")
        .expect("span recorded an event");
    let peak = event
        .args
        .iter()
        .find(|(k, _)| *k == "mem_peak_bytes")
        .map(|(_, v)| *v)
        .expect("mem_peak_bytes attached");
    assert!(peak >= 65_536 * 8, "peak arg covers the vec, got {peak}");
    // Aggregate gauge and trace arg describe the same window.
    let snap = registry.snapshot();
    assert!(snap.gauge("mem.traced_alloc.peak_bytes") >= peak as f64);
    let has_timing = snap
        .entries
        .iter()
        .any(|(n, f)| n == "time.traced_alloc" && matches!(f, Frozen::Timing(_)));
    assert!(has_timing, "the span still records its timing histogram");
}

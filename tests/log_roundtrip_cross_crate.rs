//! Integration: log formats across crates — mixed logs, corruption, and
//! property-based roundtrips at the integration boundary.

use astra_core::pipeline::{AnalysisInput, Dataset};
use astra_logs::{io as logio, CeRecord, HetRecord, ReplacementRecord, SensorRecord};
use astra_topology::{NodeId, SensorId};
use astra_util::time::sensor_span;
use proptest::prelude::*;

#[test]
fn mixed_log_file_separates_cleanly() {
    // A single interleaved "syslog" with all record kinds: each parser
    // must extract exactly its own lines.
    let ds = Dataset::generate(1, 7);
    let telemetry_records = ds.telemetry.records(
        [NodeId(0), NodeId(1)],
        astra_util::time::TimeSpan::new(sensor_span().start, sensor_span().start.plus(30)),
        10,
    );

    let mut mixed = String::new();
    let ce_count = ds.sim.ce_log.len().min(500);
    for rec in ds.sim.ce_log.iter().take(ce_count) {
        mixed.push_str(&rec.to_line());
        mixed.push('\n');
    }
    for rec in &ds.sim.het_log {
        mixed.push_str(&rec.to_line());
        mixed.push('\n');
    }
    for rec in &telemetry_records {
        mixed.push_str(&rec.to_line());
        mixed.push('\n');
    }
    for rec in ds.replacements.iter().take(100) {
        mixed.push_str(&rec.to_line());
        mixed.push('\n');
    }
    mixed.push_str("garbage line that parses as nothing\n\n");

    let ces = logio::read_lines(mixed.as_bytes(), CeRecord::parse_line).unwrap();
    let hets = logio::read_lines(mixed.as_bytes(), HetRecord::parse_line).unwrap();
    let sensors = logio::read_lines(mixed.as_bytes(), SensorRecord::parse_line).unwrap();
    let invs = logio::read_lines(mixed.as_bytes(), ReplacementRecord::parse_line).unwrap();

    assert_eq!(ces.records.len(), ce_count);
    assert_eq!(hets.records.len(), ds.sim.het_log.len());
    assert_eq!(sensors.records.len(), telemetry_records.len());
    assert_eq!(invs.records.len(), 100.min(ds.replacements.len()));
}

#[test]
fn truncated_log_degrades_gracefully() {
    // Chop the CE log mid-line: the damaged line is skipped, everything
    // before it parses.
    let ds = Dataset::generate(1, 9);
    let (ce, _, _) = ds.to_text();
    let cut = ce.len() * 2 / 3;
    // Find a safe UTF-8 boundary.
    let mut cut = cut;
    while !ce.is_char_boundary(cut) {
        cut -= 1;
    }
    let truncated = &ce[..cut];
    let full_lines = truncated.lines().count().saturating_sub(1);
    let parsed = logio::read_lines(truncated.as_bytes(), CeRecord::parse_line).unwrap();
    assert!(parsed.records.len() >= full_lines);
    assert!(parsed.skipped <= 1);
}

#[test]
fn analysis_input_counts_skips_across_logs() {
    let ds = Dataset::generate(1, 11);
    let (mut ce, mut het, mut inv) = ds.to_text();
    ce.push_str("broken ce\n");
    het.push_str("broken het\n");
    inv.push_str("broken inv\n");
    let input = AnalysisInput::from_text(&ce, &het, &inv).unwrap();
    assert_eq!(input.skipped, 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_sensor_line_roundtrip(
        node in 0u32..2592,
        sensor_idx in 0u8..7,
        minutes in 0i64..(300 * 1440),
        raw in proptest::option::of(0u32..6000),
    ) {
        let rec = SensorRecord {
            time: astra_util::Minute::from_i64(minutes),
            node: NodeId(node),
            sensor: SensorId::from_index(sensor_idx).unwrap(),
            // One decimal place, as the format emits.
            value: raw.map(|v| f64::from(v) / 10.0),
        };
        prop_assert_eq!(SensorRecord::parse_line(&rec.to_line()), Some(rec));
    }

    #[test]
    fn prop_random_lines_never_panic_parsers(line in "\\PC{0,120}") {
        // Fuzz: arbitrary printable junk must be rejected, not panic.
        let _ = CeRecord::parse_line(&line);
        let _ = HetRecord::parse_line(&line);
        let _ = SensorRecord::parse_line(&line);
        let _ = ReplacementRecord::parse_line(&line);
    }

    #[test]
    fn prop_near_miss_lines_never_panic(
        ts in "2019-[0-9]{2}-[0-9]{2}T[0-9]{2}:[0-9]{2}:00",
        node in "node[0-9]{1,6}",
        tail in "[a-zA-Z0-9=: xX-]{0,60}",
    ) {
        // Lines that look like records but have corrupted fields.
        let line = format!("{ts} {node} kernel: EDAC MC0: CE {tail}");
        let _ = CeRecord::parse_line(&line);
        let line = format!("{ts} {node} HET: {tail}");
        let _ = HetRecord::parse_line(&line);
        let line = format!("{ts} {node} BMC: {tail}");
        let _ = SensorRecord::parse_line(&line);
    }
}

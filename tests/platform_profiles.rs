//! Platform-profile contract tests.
//!
//! Three claims the profile registry stakes:
//!
//! 1. **Astra is unchanged.** `--profile astra` is byte-identical to the
//!    historical default at the same seed — pinned by checksum so a
//!    calibration drift cannot slip through as "all tests still pass".
//! 2. **Each profile is a shape, not a lottery ticket.** The fleet-level
//!    distributions a profile encodes (susceptible-node fraction, fault
//!    mode mix) must be preserved across machine scale: a 4-rack slice
//!    and a 12-rack slice of the same platform look like the same
//!    platform.
//! 3. **Provenance round-trips.** `generate` writes a manifest; every
//!    consumer resolves it; damage is a hard error, never a silent
//!    fallback to the wrong machine.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use astra_core::pipeline::Dataset;
use astra_faultsim::FaultMode;
use astra_platform::{registry, PlatformProfile, PROFILE_NAMES};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_astra-mem")
}

/// Unique per call; removed on drop even if the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        TempDir(std::env::temp_dir().join(format!(
            "astra-profiles-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        )))
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run_ok(args: &[&str]) -> (String, String) {
    let out = Command::new(bin()).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "astra-mem {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn run_err(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().expect("spawn");
    assert!(
        !out.status.success(),
        "astra-mem {args:?} unexpectedly succeeded"
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Fraction of nodes hosting at least one injected fault, and the
/// empirical fault-mode proportions, from a dataset's ground truth.
fn shape(ds: &Dataset) -> (f64, BTreeMap<FaultMode, f64>) {
    let nodes: std::collections::BTreeSet<u32> = ds
        .sim
        .ground_truth
        .iter()
        .map(|g| g.fault.dimm.node.0)
        .collect();
    let frac = nodes.len() as f64 / f64::from(ds.system.node_count());
    let total = ds.sim.ground_truth.len() as f64;
    let mut mix = BTreeMap::new();
    for g in &ds.sim.ground_truth {
        *mix.entry(g.fault.mode).or_insert(0.0) += 1.0 / total;
    }
    (frac, mix)
}

/// Claim 2: at 4 racks and at 12 racks the same profile produces the
/// same *distribution shape* — susceptible-node fraction within a few
/// points, every fault-mode proportion within a few points, and the
/// profile's dominant mode dominant at both scales.
#[test]
fn distribution_shape_is_preserved_across_scale() {
    for profile in registry() {
        let small = Dataset::generate_profile(&profile, Some(4), 11);
        let large = Dataset::generate_profile(&profile, Some(12), 11);
        assert!(
            small.sim.ground_truth.len() >= 50,
            "{}: too few faults at 4 racks to measure a shape",
            profile.name
        );

        let (frac_s, mix_s) = shape(&small);
        let (frac_l, mix_l) = shape(&large);
        assert!(
            (frac_s - frac_l).abs() < 0.05,
            "{}: susceptible fraction moved with scale: {frac_s:.3} @4r vs {frac_l:.3} @12r",
            profile.name
        );
        for mode in FaultMode::ALL {
            let s = mix_s.get(&mode).copied().unwrap_or(0.0);
            let l = mix_l.get(&mode).copied().unwrap_or(0.0);
            assert!(
                (s - l).abs() < 0.06,
                "{}: {mode:?} share moved with scale: {s:.3} @4r vs {l:.3} @12r",
                profile.name
            );
        }
        // Single-bit faults dominate every profile's calibration; that
        // ordering must survive sampling at both scales.
        for (label, mix) in [("4r", &mix_s), ("12r", &mix_l)] {
            let (&top, _) = mix
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("nonempty mix");
            assert_eq!(
                top,
                FaultMode::SingleBit,
                "{} @{label}: dominant mode is {top:?}",
                profile.name
            );
        }
    }
}

/// The profiles genuinely differ — if two produced the same mode mix the
/// registry would be three names for one machine.
#[test]
fn profiles_are_distinguishable_from_ground_truth() {
    let astra = Dataset::generate_profile(&PlatformProfile::astra(), Some(4), 11);
    let x86 = Dataset::generate_profile(&astra_platform::by_name("x86-ddr4").unwrap(), None, 11);
    let (_, mix_a) = shape(&astra);
    let (_, mix_x) = shape(&x86);
    let bit_a = mix_a.get(&FaultMode::SingleBit).copied().unwrap_or(0.0);
    let bit_x = mix_x.get(&FaultMode::SingleBit).copied().unwrap_or(0.0);
    // Astra's calibration is 0.79 single-bit, the DDR4 fleet's 0.62; the
    // gap (≈0.17) must be visible, not washed out by the simulator.
    assert!(
        bit_a - bit_x > 0.08,
        "single-bit share astra={bit_a:.3} vs x86-ddr4={bit_x:.3}"
    );
}

/// Claim 1: `--profile astra` is byte-identical to the flag-less default
/// at the same seed, and the CE log matches a pinned checksum — the
/// refactor moved the calibration, it must not have changed it.
#[test]
fn astra_profile_is_byte_identical_to_default_and_pinned() {
    let tmp = TempDir::new("pin");
    let a = tmp.join("default");
    let b = tmp.join("explicit");
    run_ok(&[
        "generate",
        "--out",
        a.to_str().unwrap(),
        "--racks",
        "2",
        "--seed",
        "42",
    ]);
    run_ok(&[
        "generate",
        "--out",
        b.to_str().unwrap(),
        "--racks",
        "2",
        "--seed",
        "42",
        "--profile",
        "astra",
    ]);
    for name in ["ce.log", "het.log", "inventory.log", "sensors.log"] {
        let da = std::fs::read(a.join(name)).unwrap();
        let db = std::fs::read(b.join(name)).unwrap();
        assert_eq!(da, db, "{name}: --profile astra diverged from default");
    }
    // Pinned: racks=2 seed=42 ce.log. If this moved, the astra
    // calibration changed — bump deliberately or find the regression.
    let ce = std::fs::read(a.join("ce.log")).unwrap();
    assert_eq!(
        astra_util::crc32(&ce),
        0xA9CF_E487,
        "astra ce.log (racks=2, seed=42) checksum drifted"
    );
}

/// Claim 3: the manifest round-trips through generate → load, and the
/// resolved shape comes from the manifest, not from defaults.
#[test]
fn manifest_roundtrips_and_consumers_resolve_it() {
    let tmp = TempDir::new("manifest");
    let dir = tmp.join("x86");
    run_ok(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--racks",
        "3",
        "--seed",
        "9",
        "--profile",
        "x86-ddr4",
    ]);
    let m = astra_logs::Manifest::load(&dir)
        .expect("readable manifest")
        .expect("manifest written by generate");
    assert_eq!(m.profile, "x86-ddr4");
    assert_eq!(m.racks, 3);
    assert_eq!(m.seed, 9);

    // analyze resolves the manifest: 3 x86-ddr4 racks = 144 nodes.
    let (stdout, stderr) = run_ok(&["analyze", dir.to_str().unwrap()]);
    assert!(stdout.contains("on 144 nodes"), "{stdout}");
    assert!(stderr.contains("using manifest"), "{stderr}");

    // Explicit flags that contradict the manifest are refused.
    let err = run_err(&["analyze", dir.to_str().unwrap(), "--racks", "2"]);
    assert!(err.contains("conflicts with the dataset manifest"), "{err}");
    let err = run_err(&["analyze", dir.to_str().unwrap(), "--profile", "astra"]);
    assert!(err.contains("conflicts with the dataset manifest"), "{err}");

    // Matching flags are redundant but fine (the CI determinism flow).
    run_ok(&["analyze", dir.to_str().unwrap(), "--racks", "3"]);
}

/// Claim 3, failure half: a damaged manifest is a typed, actionable
/// error — not a silent fall-back to the astra assumption.
#[test]
fn damaged_manifest_is_an_error_not_a_fallback() {
    let tmp = TempDir::new("damaged");
    let dir = tmp.join("d");
    run_ok(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--racks",
        "1",
        "--seed",
        "5",
    ]);
    std::fs::write(
        dir.join("manifest.txt"),
        "astra-manifest v1\nseed=not-a-number\n",
    )
    .unwrap();
    let err = run_err(&["analyze", dir.to_str().unwrap()]);
    assert!(err.contains("manifest"), "{err}");
    assert!(err.contains("rewrite it"), "{err}");
}

/// Satellite: `--profile` with an unknown name names every registered
/// profile in the error; `profiles` lists the registry.
#[test]
fn unknown_profile_lists_registry_and_profiles_subcommand_works() {
    let tmp = TempDir::new("unknown");
    let dir = tmp.join("never-created");
    let err = run_err(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--profile",
        "vax",
    ]);
    for name in PROFILE_NAMES {
        assert!(err.contains(name), "{err} should mention {name}");
    }
    assert!(!dir.exists(), "failed generate must not leave a directory");

    let (stdout, _) = run_ok(&["profiles"]);
    for p in registry() {
        assert!(stdout.contains(p.name), "{stdout}");
        assert!(stdout.contains(p.description), "{stdout}");
    }
}

/// The transfer matrix end-to-end at toy scale: one astra and one
/// datacenter dataset, all four (train, eval) pairs rendered.
#[test]
fn predict_transfer_smoke() {
    let tmp = TempDir::new("transfer");
    let a = tmp.join("astra");
    let d = tmp.join("dc");
    run_ok(&[
        "generate",
        "--out",
        a.to_str().unwrap(),
        "--racks",
        "1",
        "--seed",
        "42",
    ]);
    run_ok(&[
        "generate",
        "--out",
        d.to_str().unwrap(),
        "--racks",
        "1",
        "--seed",
        "42",
        "--profile",
        "datacenter",
    ]);
    let (stdout, _) = run_ok(&[
        "predict",
        "--train",
        a.to_str().unwrap(),
        "--train",
        d.to_str().unwrap(),
        "--eval",
        a.to_str().unwrap(),
        "--eval",
        d.to_str().unwrap(),
    ]);
    assert!(stdout.contains("train\\eval"), "{stdout}");
    assert!(stdout.contains("astra"), "{stdout}");
    assert!(stdout.contains("datacenter"), "{stdout}");
    // 2 trains x 2 evals and a header: at least 3 matrix lines.
    assert!(stdout.lines().count() >= 3, "{stdout}");

    // Transfer refuses manifest-less directories (it cannot re-simulate
    // truth it cannot identify).
    let bare = tmp.join("bare");
    std::fs::create_dir_all(&bare).unwrap();
    std::fs::write(bare.join("ce.log"), "").unwrap();
    let err = run_err(&[
        "predict",
        "--train",
        bare.to_str().unwrap(),
        "--eval",
        a.to_str().unwrap(),
    ]);
    assert!(err.contains("no manifest.txt"), "{err}");
}

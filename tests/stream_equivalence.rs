//! Golden equivalence of the incremental engine: `astra-mem
//! stream-analyze` must print byte-for-byte what `astra-mem analyze`
//! prints — including when the streaming run is split in half by a
//! mid-stream checkpoint and resumed in a second process.
//!
//! Subprocesses, not in-process calls, because stdout is the contract
//! under test and the metric registry is process-global.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_astra-mem")
}

/// Unique per call; removed on drop even if the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "astra-stream-eq-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Run the binary, asserting success; return stdout verbatim.
fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = Command::new(bin()).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "astra-mem {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn generate(dir: &Path) {
    stdout_of(&[
        "generate",
        "--racks",
        "1",
        "--seed",
        "42",
        "--out",
        dir.to_str().unwrap(),
    ]);
}

#[test]
fn stream_analyze_stdout_is_byte_identical_to_analyze() {
    let tmp = TempDir::new("golden");
    let logs = tmp.join("logs");
    generate(&logs);
    let logs = logs.to_str().unwrap();

    let batch = stdout_of(&["analyze", logs, "--racks", "1"]);
    assert!(!batch.is_empty());
    let streamed = stdout_of(&["stream-analyze", logs, "--racks", "1"]);
    assert_eq!(
        streamed,
        batch,
        "stream-analyze stdout differs from analyze:\n--- analyze ---\n{}\n--- stream ---\n{}",
        String::from_utf8_lossy(&batch),
        String::from_utf8_lossy(&streamed)
    );
}

#[test]
fn checkpoint_resume_reproduces_the_full_output() {
    let tmp = TempDir::new("resume");
    let logs = tmp.join("logs");
    generate(&logs);
    let logs = logs.to_str().unwrap();
    let ck = tmp.join("ck.txt");
    let ck = ck.to_str().unwrap();

    let batch = stdout_of(&["analyze", logs, "--racks", "1"]);

    // First half: stop mid-stream after writing a checkpoint. Nothing may
    // reach stdout, so the resumed run's stdout alone is the full report.
    let first = stdout_of(&[
        "stream-analyze",
        logs,
        "--racks",
        "1",
        "--stop-after",
        "20000",
        "--checkpoint",
        ck,
    ]);
    assert!(
        first.is_empty(),
        "interrupted run leaked stdout: {}",
        String::from_utf8_lossy(&first)
    );

    // Second half: resume and finish.
    let resumed = stdout_of(&["stream-analyze", logs, "--racks", "1", "--resume", ck]);
    assert_eq!(
        resumed,
        batch,
        "resumed stream-analyze differs from analyze:\n--- analyze ---\n{}\n--- resumed ---\n{}",
        String::from_utf8_lossy(&batch),
        String::from_utf8_lossy(&resumed)
    );
}

#[test]
fn periodic_checkpoints_do_not_change_the_output() {
    let tmp = TempDir::new("cadence");
    let logs = tmp.join("logs");
    generate(&logs);
    let logs = logs.to_str().unwrap();
    let ck = tmp.join("ck.txt");

    let plain = stdout_of(&["stream-analyze", logs, "--racks", "1"]);
    let checkpointed = stdout_of(&[
        "stream-analyze",
        logs,
        "--racks",
        "1",
        "--checkpoint-every",
        "50000",
        "--checkpoint",
        ck.to_str().unwrap(),
    ]);
    assert_eq!(checkpointed, plain);
    assert!(ck.exists(), "cadence run should leave a checkpoint behind");
}

#[test]
fn stop_without_checkpoint_path_is_an_error() {
    let tmp = TempDir::new("badstop");
    let logs = tmp.join("logs");
    generate(&logs);

    let out = Command::new(bin())
        .args([
            "stream-analyze",
            logs.to_str().unwrap(),
            "--racks",
            "1",
            "--stop-after",
            "100",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--checkpoint"), "stderr: {stderr}");
}

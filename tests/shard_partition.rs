//! Property-based tests of the rack-range partitioner behind
//! `shard-analyze`: whatever rack and shard counts a user asks for, the
//! half-open ranges handed to workers must be a total, disjoint,
//! order-preserving cover of `0..racks` — that is what makes the
//! left-to-right shard merge equivalent to the single-process run.

use astra_core::shard::partition_racks;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Concatenated in order, the ranges tile `0..racks` exactly: each
    /// range is non-empty, starts where the previous one ended, and the
    /// last one ends at `racks`. Totality, disjointness, and order
    /// preservation all follow from this single walk.
    #[test]
    fn partition_is_a_total_disjoint_ordered_cover(
        racks in 1u32..4097,
        shards in 1u32..65,
    ) {
        let parts = partition_racks(racks, shards);
        prop_assert!(!parts.is_empty());
        let mut next = 0u32;
        for &(lo, hi) in &parts {
            prop_assert_eq!(lo, next, "gap or overlap before rack {}", lo);
            prop_assert!(lo < hi, "empty range {}..{}", lo, hi);
            next = hi;
        }
        prop_assert_eq!(next, racks, "cover must end at the rack count");
    }

    /// The shard count is honored when possible and clamped to the rack
    /// count when not: never more ranges than racks, never fewer than
    /// requested unless racks run out.
    #[test]
    fn shard_count_is_clamped_to_the_rack_count(
        racks in 1u32..4097,
        shards in 1u32..65,
    ) {
        let parts = partition_racks(racks, shards);
        prop_assert_eq!(parts.len() as u32, shards.min(racks));
    }

    /// Work is spread evenly: range lengths differ by at most one, and
    /// the longer ranges come first (the remainder is front-loaded).
    #[test]
    fn ranges_are_balanced_with_the_remainder_front_loaded(
        racks in 1u32..4097,
        shards in 1u32..65,
    ) {
        let parts = partition_racks(racks, shards);
        let lens: Vec<u32> = parts.iter().map(|&(lo, hi)| hi - lo).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced lengths: {:?}", lens);
        for pair in lens.windows(2) {
            prop_assert!(pair[0] >= pair[1], "remainder not front-loaded: {:?}", lens);
        }
    }

    /// More shards than racks degenerates to one rack per shard.
    #[test]
    fn oversharding_yields_one_rack_per_range(
        racks in 1u32..65,
        extra in 0u32..65,
    ) {
        let parts = partition_racks(racks, racks + extra);
        prop_assert_eq!(parts.len() as u32, racks);
        for (i, &(lo, hi)) in parts.iter().enumerate() {
            prop_assert_eq!((lo, hi), (i as u32, i as u32 + 1));
        }
    }
}

/// Zero shards is treated as one (the CLI rejects it, but the library
/// call must still be total).
#[test]
fn zero_shards_degenerates_to_a_single_range() {
    assert_eq!(partition_racks(7, 0), vec![(0, 7)]);
}

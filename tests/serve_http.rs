//! In-process contract tests for the serve daemon.
//!
//! The serving contract is byte-identity: once a site's logs are fully
//! consumed, `GET /site/<name>/analysis` must return exactly what
//! `astra-mem analyze` prints for the same directory. The batch oracle
//! runs as a subprocess (stdout is its contract); the daemon runs
//! in-process so the test can use [`astra_core::serve::start_sites`] and
//! the typed client directly.
//!
//! The hammer test drives four concurrent readers against a site whose
//! log is still being appended to, asserting every response parses and
//! reflects a single published snapshot (no torn generations).

use std::io::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use astra_core::stream::StreamOptions;
use astra_serve::{http, ServeOptions};
use astra_topology::SystemConfig;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_astra-mem")
}

/// Unique per call; removed on drop even if the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "astra-serve-http-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Run the binary, asserting success; return stdout verbatim.
fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = Command::new(bin()).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "astra-mem {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn generate(dir: &Path) {
    stdout_of(&[
        "generate",
        "--racks",
        "1",
        "--seed",
        "42",
        "--out",
        dir.to_str().unwrap(),
    ]);
}

fn quick_serve_opts() -> ServeOptions {
    ServeOptions {
        listen: "127.0.0.1:0".to_string(),
        poll_interval: Duration::from_millis(10),
        ..ServeOptions::default()
    }
}

/// Pull `"field":<u64>` out of a flat JSON object body.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {field} in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {field} in {body}"))
}

#[test]
fn analysis_endpoint_is_byte_identical_to_analyze() {
    let tmp = TempDir::new("golden");
    let logs = tmp.join("logs");
    generate(&logs);
    let batch = stdout_of(&["analyze", logs.to_str().unwrap(), "--racks", "1"]);
    assert!(!batch.is_empty());

    let server = astra_core::serve::start_sites(
        std::slice::from_ref(&logs),
        SystemConfig::scaled(1),
        &StreamOptions::default(),
        &quick_serve_opts(),
    )
    .expect("daemon starts");
    // Generation >= 1 means the first poll completed, and a poll consumes
    // everything currently available — the static dataset is fully in.
    assert!(server.wait_ready(Duration::from_secs(30)), "never ready");
    let addr = server.addr();

    let live = http::get(addr, "/site/logs/analysis").unwrap();
    assert_eq!(live.status, 200);
    assert_eq!(
        live.body.as_bytes(),
        &batch[..],
        "live analysis differs from analyze stdout:\n--- analyze ---\n{}\n--- live ---\n{}",
        String::from_utf8_lossy(&batch),
        live.body
    );

    // The summary must agree with itself: events is the sum of the
    // per-source consumed counts, and nothing was quarantined.
    let summary = http::get(addr, "/site/logs").unwrap();
    assert_eq!(summary.status, 200);
    assert_eq!(json_u64(&summary.body, "quarantined"), 0);
    assert!(
        summary.body.contains("\"resumed\":false"),
        "{}",
        summary.body
    );

    // The other views answer too, with well-formed bodies.
    let spatial = http::get(addr, "/site/logs/spatial").unwrap();
    assert!(spatial.body.contains("by DIMM slot"), "{}", spatial.body);
    let alerts = http::get(addr, "/site/logs/alerts").unwrap();
    assert!(alerts.body.starts_with('[') && alerts.body.ends_with("]\n"));
    let quarantine = http::get(addr, "/site/logs/quarantine").unwrap();
    assert!(
        quarantine.body.starts_with("{\"total\":0"),
        "{}",
        quarantine.body
    );

    server.trigger_shutdown();
    server.join();
}

/// Split `ce.log` at a line boundary roughly in half; returns the tail
/// half that the writer thread will drip back in.
fn split_ce_log(dir: &Path) -> Vec<u8> {
    let path = dir.join("ce.log");
    let all = std::fs::read(&path).unwrap();
    let mid = all.len() / 2;
    let cut = mid + all[mid..].iter().position(|&b| b == b'\n').unwrap() + 1;
    std::fs::write(&path, &all[..cut]).unwrap();
    all[cut..].to_vec()
}

#[test]
fn concurrent_readers_see_single_untorn_snapshots_while_ingest_advances() {
    let tmp = TempDir::new("hammer");
    let logs = tmp.join("live");
    generate(&logs);
    let tail = split_ce_log(&logs);

    let server = astra_core::serve::start_sites(
        std::slice::from_ref(&logs),
        SystemConfig::scaled(1),
        &StreamOptions::default(),
        &quick_serve_opts(),
    )
    .expect("daemon starts");
    assert!(server.wait_ready(Duration::from_secs(30)));
    let addr: SocketAddr = server.addr();

    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for r in 0..4 {
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut queries = 0u64;
            let mut last_generation = 0u64;
            let mut last_events = 0u64;
            while !done.load(Ordering::SeqCst) {
                let health = http::get(addr, "/health").unwrap();
                assert_eq!(health.status, 200, "reader {r}: {}", health.body);
                assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);

                // One summary response must be internally consistent — a
                // torn snapshot would mix events from one generation with
                // consumed counts from another.
                let summary = http::get(addr, "/site/live").unwrap();
                assert_eq!(summary.status, 200);
                let events = json_u64(&summary.body, "events");
                let consumed_sum: u64 = {
                    let needle = "\"consumed\":[";
                    let at = summary.body.find(needle).unwrap();
                    summary.body[at + needle.len()..]
                        .split(']')
                        .next()
                        .unwrap()
                        .split(',')
                        .map(|n| n.parse::<u64>().unwrap())
                        .sum()
                };
                assert_eq!(
                    events, consumed_sum,
                    "reader {r} saw a torn summary: {}",
                    summary.body
                );
                let generation = json_u64(&summary.body, "generation");
                assert!(
                    generation >= last_generation && events >= last_events,
                    "reader {r}: time went backwards ({last_generation}->{generation}, \
                     {last_events}->{events})"
                );
                last_generation = generation;
                last_events = events;

                // The analysis body for that generation parses as a report:
                // first line is the summary line the batch path prints.
                let analysis = http::get(addr, "/site/live/analysis").unwrap();
                assert_eq!(analysis.status, 200);
                let first = analysis.body.lines().next().unwrap_or("");
                assert!(
                    first.contains("errors -> ") && first.contains(" nodes"),
                    "reader {r} got a malformed analysis body: {first}"
                );
                queries += 1;
            }
            queries
        }));
    }

    // Writer: drip the held-back half of ce.log in while readers hammer.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(logs.join("ce.log"))
        .unwrap();
    for chunk in tail.chunks(tail.len() / 20 + 1) {
        file.write_all(chunk).unwrap();
        file.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(file);

    // Wait until the daemon has folded the whole log back in.
    let expected = stdout_of(&["analyze", logs.to_str().unwrap(), "--racks", "1"]);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let live = http::get(addr, "/site/live/analysis").unwrap();
        if live.body.as_bytes() == &expected[..] {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never converged on the appended log:\n--- expected ---\n{}\n--- live ---\n{}",
            String::from_utf8_lossy(&expected),
            live.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    done.store(true, Ordering::SeqCst);
    let mut total = 0u64;
    for reader in readers {
        total += reader.join().expect("reader panicked");
    }
    assert!(total > 0, "readers must have issued queries");

    server.trigger_shutdown();
    server.join();
}

//! Seed robustness: the paper-shape conclusions must not be artifacts of
//! the default seed. Every structural claim is re-checked across several
//! seeds at 4-rack scale; statistical claims are allowed one marginal
//! seed out of the set (they are, after all, statistical).

use astra_core::experiments;
use astra_core::pipeline::{Analysis, Dataset};
use astra_util::time::study_span;

const SEEDS: [u64; 5] = [1, 7, 42, 1337, 99991];

fn analyses() -> Vec<(u64, Dataset, Analysis)> {
    SEEDS
        .iter()
        .map(|&seed| {
            let ds = Dataset::generate(4, seed);
            let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
            (seed, ds, analysis)
        })
        .collect()
}

#[test]
fn structural_invariants_hold_for_every_seed() {
    for (seed, ds, analysis) in analyses() {
        // Attribution is complete.
        let attributed: u64 = analysis.faults.iter().map(|f| f.error_count).sum();
        assert_eq!(
            attributed + ds.sim.dropped_ces,
            ds.sim.offered_errors(),
            "seed {seed}: errors lost in the pipeline"
        );
        // Faults are orders of magnitude fewer than errors.
        assert!(
            analysis.total_faults() * 50 < analysis.total_errors(),
            "seed {seed}: fault/error ratio"
        );
    }
}

#[test]
fn headline_shapes_hold_for_most_seeds() {
    let mut zero_frac_ok = 0;
    let mut concentration_ok = 0;
    let mut rank0_ok = 0;
    let mut slot_ok = 0;
    let mut median_one_ok = 0;
    let mut flatter_ok = 0;
    let n = SEEDS.len();

    for (_seed, _ds, analysis) in analyses() {
        let f5 = experiments::fig5::compute(&analysis);
        if f5.zero_ce_fraction() > 0.5 {
            zero_frac_ok += 1;
        }
        if f5.top_percent_share(2.0) > 0.6 {
            concentration_ok += 1;
        }
        let f7 = experiments::fig7::compute(&analysis);
        if f7.rank0_dominates() {
            rank0_ok += 1;
        }
        if f7.hot_slots_dominate() {
            slot_ok += 1;
        }
        let f4 = experiments::fig4::compute(&analysis, study_span());
        if f4.violin.as_ref().map(|v| v.median) == Some(1.0) {
            median_one_ok += 1;
        }
        let f6 = experiments::fig6::compute(&analysis);
        if f6.faults_flatter_than_errors() {
            flatter_ok += 1;
        }
    }

    // Structural skews must hold for nearly every seed (the rank split is
    // 58/42 and the machine-wide weak-location table re-draws ranks per
    // location, so a small machine can flip it — as a real 4-rack slice
    // of Astra could); tail statistics for all but at most one.
    assert!(rank0_ok >= n - 1, "rank-0 skew: {rank0_ok}/{n}");
    assert_eq!(slot_ok, n, "slot skew is built in");
    assert_eq!(median_one_ok, n, "median errors/fault is 1");
    assert_eq!(flatter_ok, n, "faults flatter than errors");
    assert!(
        zero_frac_ok >= n - 1,
        "zero-CE fraction: {zero_frac_ok}/{n}"
    );
    assert!(
        concentration_ok >= n - 1,
        "concentration: {concentration_ok}/{n}"
    );
}

#[test]
fn calibrated_volume_is_stable_across_seeds() {
    // Per-node CE volume should stay within a factor band across seeds —
    // the heavy tail moves totals around, but not by orders of magnitude.
    let volumes: Vec<f64> = analyses()
        .iter()
        .map(|(_, ds, a)| a.total_errors() as f64 / f64::from(ds.system.node_count()))
        .collect();
    let min = volumes.iter().cloned().fold(f64::MAX, f64::min);
    let max = volumes.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max / min < 4.0,
        "per-node volumes vary too wildly: {volumes:?}"
    );
}

//! Integration: the full pipeline across crates — simulate a machine,
//! serialize its logs to the published text formats, parse them back, and
//! run the complete analysis, checking cross-crate invariants the unit
//! tests cannot see.

use astra_core::experiments;
use astra_core::pipeline::{Analysis, AnalysisInput, Dataset};
use astra_core::ObservedMode;
use astra_faultsim::FaultMode;
use astra_util::time::{sensor_span, study_span};

fn dataset() -> Dataset {
    Dataset::generate(2, 42)
}

#[test]
fn text_pipeline_reaches_identical_analysis() {
    let ds = dataset();
    let (ce, het, inv) = ds.to_text();
    let via_text = AnalysisInput::from_text(&ce, &het, &inv).unwrap();
    let direct = AnalysisInput::from_dataset_direct(ds.clone());

    let a = Analysis::run(ds.system, via_text.records);
    let b = Analysis::run(ds.system, direct.records);
    assert_eq!(a.total_errors(), b.total_errors());
    assert_eq!(a.total_faults(), b.total_faults());
    assert_eq!(a.spatial.errors_by_slot, b.spatial.errors_by_slot);
    assert_eq!(a.spatial.faults_by_rank, b.spatial.faults_by_rank);
}

#[test]
fn coalescing_recovers_ground_truth_fault_population() {
    let ds = dataset();
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());

    // The analyzer sees only logged errors; ground truth counts faults
    // whose errors were generated. Faults whose every error was dropped
    // by the kernel buffer are invisible, and overlapping footprints can
    // merge, so we check agreement within a tolerance band.
    // Over-counting comes from low-budget wide faults whose few errors
    // never exercise the wide footprint: a bank fault that fired three
    // times in three columns is, to any observer, three single-bit
    // faults. The band below is the measured confusion at this scale.
    let truth = ds.sim.ground_truth.len() as f64;
    let observed = analysis.total_faults() as f64;
    assert!(
        (observed - truth).abs() / truth < 0.2,
        "observed {observed} vs ground truth {truth}"
    );
}

#[test]
fn coalescing_recovers_fault_modes() {
    let ds = dataset();
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());

    // Ground-truth single-bit faults vs observed single-bit faults.
    // Single-error faults of wide modes (a column fault that fired once)
    // are indistinguishable from single-bit faults — the classifier can
    // only see footprints — so allow the observed count to absorb them.
    let truth_bit = ds
        .sim
        .ground_truth
        .iter()
        .filter(|g| g.fault.mode == FaultMode::SingleBit)
        .count() as f64;
    let observed_bit = analysis
        .faults
        .iter()
        .filter(|f| f.mode == ObservedMode::SingleBit)
        .count() as f64;
    assert!(
        observed_bit >= truth_bit * 0.9 && observed_bit <= truth_bit * 1.6,
        "single-bit: observed {observed_bit} vs truth {truth_bit}"
    );

    // Every pathological DIMM must surface as rank-level faults.
    let truth_pin_dimms: std::collections::BTreeSet<u64> = ds
        .sim
        .ground_truth
        .iter()
        .filter(|g| g.fault.mode == FaultMode::RankPin)
        .map(|g| g.fault.dimm.dense_index())
        .collect();
    let observed_pin_dimms: std::collections::BTreeSet<u64> = analysis
        .faults
        .iter()
        .filter(|f| f.mode == ObservedMode::RankLevel)
        .map(|f| {
            astra_topology::DimmId {
                node: f.node,
                slot: f.slot,
            }
            .dense_index()
        })
        .collect();
    for dimm in &truth_pin_dimms {
        assert!(
            observed_pin_dimms.contains(dimm),
            "pathological DIMM {dimm} not recovered as rank-level"
        );
    }
}

#[test]
fn rank_level_faults_carry_most_errors() {
    // The interpretation documented in EXPERIMENTS.md: the gap between
    // "all errors" and the four per-bank modes is rank-level fault volume.
    let ds = dataset();
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
    let fig4 = experiments::fig4::compute(&analysis, study_span());
    let rank_errors = fig4.mode_total(ObservedMode::RankLevel);
    let bit_errors = fig4.mode_total(ObservedMode::SingleBit);
    assert!(
        rank_errors > bit_errors,
        "rank {rank_errors} vs bit {bit_errors}"
    );
    // At 2 racks only ~1 pathological DIMM exists, so the share is noisy;
    // at full scale rank-level carries ~2/3 of all CEs (EXPERIMENTS.md).
    assert!(rank_errors * 3 > fig4.total_errors());
}

#[test]
fn every_experiment_driver_runs_on_one_dataset() {
    let ds = dataset();
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
    let quick = astra_core::tempcorr::TempCorrConfig {
        max_ce_samples: 200,
        window_stride: 60,
        monthly_stride: 2 * astra_util::MINUTES_PER_DAY,
        bin_width: 1.0,
    };

    let t1 = experiments::table1::compute(&ds.system, &ds.replacements);
    assert!(t1.rows[0].replaced > 0);

    let f2 = experiments::fig2::compute(&ds.telemetry, sensor_span(), 16, 12 * 60);
    assert!(f2.excluded_fraction() < 0.01);

    let f3 = experiments::fig3::compute(&ds.replacements, astra_util::time::replacement_span());
    // At 2 racks the per-category daily counts are sparse; check the
    // infant-mortality burst on the combined series.
    let combined_first: u64 = f3.series.iter().map(|s| s[..30].iter().sum::<u64>()).sum();
    let combined_second: u64 = f3
        .series
        .iter()
        .map(|s| s[30..60].iter().sum::<u64>())
        .sum();
    assert!(combined_first > combined_second);

    let f4 = experiments::fig4::compute(&analysis, study_span());
    assert_eq!(f4.total_errors(), analysis.total_errors());

    let f5 = experiments::fig5::compute(&analysis);
    assert!(f5.zero_ce_fraction() > 0.4);

    let f6 = experiments::fig6::compute(&analysis);
    assert!(f6.faults_flatter_than_errors());

    let f7 = experiments::fig7::compute(&analysis);
    assert!(f7.rank0_dominates());

    let f8 = experiments::fig8::compute(&analysis);
    assert!(f8.faults_by_bit.total() > 0);

    let f9 = experiments::fig9::compute(&analysis, &ds.telemetry, sensor_span(), &quick);
    assert_eq!(f9.windows.len(), 4);

    let f10 = experiments::fig10_12::compute(&analysis);
    assert!(f10.fault_region_spread_is_smaller());

    let f13 = experiments::fig13_14::compute_fig13(&analysis, &ds.telemetry, sensor_span(), &quick);
    assert_eq!(f13.cpu.len() + f13.dimm.len(), 6);

    let f14 = experiments::fig13_14::compute_fig14(&analysis, &ds.telemetry, sensor_span(), &quick);
    assert_eq!(f14.panels.len(), 6);

    let window = astra_util::time::TimeSpan::dates(
        astra_util::time::het_firmware_date(),
        astra_util::CalDate::new(2019, 9, 14),
    );
    let f15 = experiments::fig15::compute(&ds.sim.het_log, window, ds.system.dimm_count());
    assert!(f15.all.total() >= f15.non_recoverable.total());

    // Every render is non-empty and does not panic.
    for rendered in [
        t1.render(),
        f2.render(),
        f3.render(),
        f4.render(),
        f5.render(),
        f6.render(),
        f7.render(),
        f8.render(),
        f9.render(),
        f10.render(),
        f13.render(),
        f14.render(),
        f15.render(),
    ] {
        assert!(!rendered.trim().is_empty());
    }
}

#[test]
fn different_seeds_produce_different_but_shapely_data() {
    let a = Dataset::generate(1, 1);
    let b = Dataset::generate(1, 2);
    assert_ne!(a.sim.ce_log.len(), b.sim.ce_log.len());
    for ds in [a, b] {
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let attributed: u64 = analysis.faults.iter().map(|f| f.error_count).sum();
        assert_eq!(attributed, analysis.total_errors());
        let f5 = experiments::fig5::compute(&analysis);
        assert!(f5.zero_ce_fraction() > 0.3);
    }
}

//! Determinism of the parallel analysis paths.
//!
//! Every parallel stage — the k-way CE merge in the simulator, sharded
//! coalescing, the spatial `par_fold`, and the prediction replay — must
//! produce output
//! bit-identical to the sequential path at any worker count. These tests
//! pin that down by forcing the worker override (`astra_util::par`'s
//! `ASTRA_WORKERS` hook) to 1 and then to several workers and comparing
//! whole structures. They also cover the distinguishable
//! missing-vs-corrupt error from `AnalysisInput::from_dir`.

use std::sync::Mutex;

use astra_core::coalesce::{coalesce, CoalesceConfig};
use astra_core::pipeline::{Analysis, AnalysisInput, Dataset, LoadError};
use astra_core::spatial::SpatialCounts;
use astra_core::stream::{stream_analyze, StreamOptions, StreamReport};
use astra_util::par;

/// The worker override is process-global; tests that flip it must not
/// interleave. Recover from poisoning so one failed test reports its own
/// assertion instead of cascading `PoisonError`s.
static WORKER_LOCK: Mutex<()> = Mutex::new(());

fn with_workers<T>(n: usize, f: impl FnOnce() -> T) -> T {
    par::set_workers(Some(n));
    let out = f();
    par::set_workers(None);
    out
}

/// Two racks puts the CE stream (~250 k records) past the parallel
/// thresholds of both coalescing and the spatial fold.
fn dataset(seed: u64) -> Dataset {
    Dataset::generate(2, seed)
}

#[test]
fn simulate_merge_identical_across_worker_counts() {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let base = with_workers(1, || dataset(42));
    for workers in [2, 4] {
        let par = with_workers(workers, || dataset(42));
        assert_eq!(
            base.sim.ce_log, par.sim.ce_log,
            "CE log differs at {workers} workers"
        );
        assert_eq!(base.sim.het_log, par.sim.het_log);
    }
}

#[test]
fn coalesce_identical_across_worker_counts() {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ds = dataset(43);
    let config = CoalesceConfig::default();
    let base = with_workers(1, || coalesce(&ds.sim.ce_log, &config));
    assert!(!base.is_empty());
    for workers in [2, 4] {
        let par = with_workers(workers, || coalesce(&ds.sim.ce_log, &config));
        assert_eq!(base, par, "coalesce output differs at {workers} workers");
    }
}

#[test]
fn spatial_counts_identical_across_worker_counts() {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ds = dataset(44);
    let faults = coalesce(&ds.sim.ce_log, &CoalesceConfig::default());
    let base = with_workers(1, || {
        SpatialCounts::compute(&ds.system, &ds.sim.ce_log, &faults)
    });
    for workers in [2, 4] {
        let par = with_workers(workers, || {
            SpatialCounts::compute(&ds.system, &ds.sim.ce_log, &faults)
        });
        assert_eq!(base, par, "spatial counts differ at {workers} workers");
    }
}

#[test]
fn predict_replay_identical_across_worker_counts() {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ds = dataset(45);
    let config = astra_predict::PredictConfig::default();
    let base = with_workers(1, || {
        astra_predict::replay(
            &ds.sim.ce_log,
            &config,
            &astra_predict::default_predictors(),
        )
    });
    assert!(!base.is_empty(), "two racks should raise some alerts");
    for workers in [2, 4] {
        let par = with_workers(workers, || {
            astra_predict::replay(
                &ds.sim.ce_log,
                &config,
                &astra_predict::default_predictors(),
            )
        });
        assert_eq!(base, par, "alert stream differs at {workers} workers");
    }
}

#[test]
fn batch_engine_identical_across_worker_counts() {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // `Analysis::run` now drives the incremental engine's sharded consume
    // (`stream::run_batch`); contiguous shards + exact merge must make it
    // indistinguishable from the sequential pass.
    let ds = dataset(46);
    let base = with_workers(1, || Analysis::run(ds.system, ds.sim.ce_log.clone()));
    assert!(!base.faults.is_empty());
    for workers in [2, 4] {
        let par = with_workers(workers, || Analysis::run(ds.system, ds.sim.ce_log.clone()));
        assert_eq!(
            base.faults, par.faults,
            "batch-engine faults differ at {workers} workers"
        );
        assert_eq!(
            base.spatial, par.spatial,
            "batch-engine spatial counts differ at {workers} workers"
        );
    }
}

#[test]
fn stream_analyze_identical_across_worker_counts() {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The streaming pass is one ordered consume loop, but its snapshot
    // classifies groups through the same parallel path as batch
    // coalescing — the whole report must not depend on worker count.
    let ds = dataset(47);
    let dir = TempDirGuard::new("streamdet");
    ds.write_logs(&dir.0).unwrap();
    let opts = StreamOptions::default();
    let run = |workers| -> StreamReport {
        with_workers(workers, || {
            stream_analyze(&dir.0, ds.system, &opts)
                .expect("stream-analyze failed")
                .expect("no stop requested, must yield a report")
        })
    };
    let base = run(1);
    assert!(!base.faults.is_empty());
    for workers in [2, 4] {
        let par = run(workers);
        assert_eq!(
            base.faults, par.faults,
            "stream faults differ at {workers} workers"
        );
        assert_eq!(base.spatial, par.spatial);
        assert_eq!(base.alerts, par.alerts);
        assert_eq!(base.fig4.render(), par.fig4.render());
        assert_eq!(base.fig5.render(), par.fig5.render());
    }
}

#[test]
fn span_paths_nest_identically_across_worker_counts() {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Worker threads inherit the caller's span path, so the set of
    // `time.*` paths must not depend on the worker count — the same
    // tree, whether a shard ran on the caller or on a worker. Each run
    // installs a unique root so its paths are separable in the global
    // registry (other tests in this binary record spans concurrently).
    let ds = dataset(48);
    let paths_at = |workers: usize, root: &str| -> Vec<String> {
        with_workers(workers, || {
            let _root = astra_obs::inherit_path(Some(root));
            Analysis::run(ds.system, ds.sim.ce_log.clone());
        });
        let prefix = format!("time.{root}/");
        astra_obs::global()
            .snapshot()
            .entries
            .iter()
            .filter_map(|(name, _)| name.strip_prefix(&prefix).map(str::to_string))
            .collect()
    };
    let base = paths_at(1, "spandet_w1");
    assert!(
        base.iter()
            .any(|p| p == "pipeline.analyze/pipeline.consume/consume.shard"),
        "shard spans must nest under the pipeline even sequentially: {base:?}"
    );
    assert!(
        base.iter()
            .any(|p| p == "pipeline.analyze/pipeline.coalesce"),
        "{base:?}"
    );
    for workers in [2, 4] {
        let par = paths_at(workers, &format!("spandet_w{workers}"));
        assert_eq!(
            base, par,
            "span path tree differs at {workers} workers (snapshots sort by name)"
        );
    }
    // The regression this pins: a worker starting from an empty span
    // stack would record its shard span at the root.
    let snap = astra_obs::global().snapshot();
    for rootless in ["time.consume.shard", "time.parse.shard"] {
        assert!(
            snap.get(rootless).is_none(),
            "found rootless worker span {rootless}"
        );
    }
}

/// Removes its temp dir on drop so a failing assertion does not leak it.
struct TempDirGuard(std::path::PathBuf);

impl TempDirGuard {
    fn new(tag: &str) -> TempDirGuard {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "astra-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        TempDirGuard(dir)
    }
}

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn from_dir_distinguishes_missing_from_corrupt() {
    let ds = Dataset::generate(1, 42);
    let guard = TempDirGuard::new("loaderr");
    ds.write_logs(&guard.0).unwrap();

    // Deleting a required log → MissingLog naming the file.
    std::fs::remove_file(guard.0.join("ce.log")).unwrap();
    match AnalysisInput::from_dir(&guard.0) {
        Err(LoadError::MissingLog { name, path }) => {
            assert_eq!(name, "ce.log");
            assert!(path.ends_with("ce.log"));
        }
        other => panic!("expected MissingLog, got {other:?}"),
    }

    // A present but undecodable log → the strict default reports it
    // corrupt with a typed quarantine.
    std::fs::write(guard.0.join("ce.log"), [0xFF, 0xFE, b'\n']).unwrap();
    match AnalysisInput::from_dir(&guard.0) {
        Err(e @ LoadError::Corrupt { name, .. }) => {
            assert_eq!(name, "ce.log");
            assert!(e.to_string().contains("corrupt"));
            assert!(e.to_string().contains("bad-utf8"));
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn from_dir_tolerates_absent_sensor_log() {
    let ds = Dataset::generate(1, 42);
    let guard = TempDirGuard::new("nosensors");
    ds.write_logs(&guard.0).unwrap();
    std::fs::remove_file(guard.0.join("sensors.log")).unwrap();
    let input = AnalysisInput::from_dir(&guard.0).unwrap();
    assert!(input.sensors.is_empty());
    assert_eq!(input.records.len(), ds.sim.ce_log.len());
}

//! Supervised sharded analysis: `astra-mem shard-analyze` must print
//! byte-for-byte what `astra-mem analyze` prints — across shard counts,
//! and even when the chaos injector makes a worker crash, hang, or tear
//! its snapshot mid-run. When every retry is exhausted, strict mode must
//! abort with nothing on stdout, while `--degraded` must emit a partial
//! report behind an explicit missing-racks banner and the dedicated
//! "partial" exit code.
//!
//! Subprocesses, not in-process calls, because process supervision (spawn,
//! kill-and-reap, exit codes) is exactly the machinery under test.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_astra-mem")
}

/// Unique per call; removed on drop even if the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "astra-shard-sup-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Run the binary with optional env vars; return the raw `Output`.
fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn astra-mem")
}

/// Run the binary, asserting success; return stdout verbatim.
fn stdout_of(args: &[&str], envs: &[(&str, &str)]) -> Vec<u8> {
    let out = run(args, envs);
    assert!(
        out.status.success(),
        "astra-mem {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Generate a binary-format dataset (binary keeps the repeated full-log
/// parses these tests do cheap enough for debug builds).
fn generate(dir: &Path, racks: &str) {
    stdout_of(
        &[
            "generate",
            "--racks",
            racks,
            "--seed",
            "42",
            "--format",
            "binary",
            "--out",
            dir.to_str().unwrap(),
        ],
        &[],
    );
}

#[test]
fn shard_analyze_is_byte_identical_to_analyze_at_1_2_4_8_shards() {
    let tmp = TempDir::new("identity");
    let logs = tmp.join("logs");
    generate(&logs, "8");
    let logs = logs.to_str().unwrap();

    let batch = stdout_of(&["analyze", logs], &[]);
    assert!(!batch.is_empty());

    for shards in ["1", "2", "4", "8"] {
        let sharded = stdout_of(&["shard-analyze", logs, "--shards", shards], &[]);
        assert_eq!(
            sharded,
            batch,
            "shard-analyze --shards {shards} differs from analyze:\n--- analyze ---\n{}\n--- sharded ---\n{}",
            String::from_utf8_lossy(&batch),
            String::from_utf8_lossy(&sharded)
        );
    }
}

/// Chaos env for one injected fault with a one-trip budget: the first
/// attempt of the targeted shard fails, every retry runs clean.
fn one_shot_chaos<'a>(spec: &'a str, trips: &'a str) -> Vec<(&'a str, &'a str)> {
    vec![
        ("ASTRA_SHARD_CHAOS", spec),
        ("ASTRA_SHARD_CHAOS_TRIPS", trips),
        ("ASTRA_SHARD_CHAOS_MAX_TRIPS", "1"),
    ]
}

#[test]
fn an_injected_crash_is_retried_and_the_output_is_identical() {
    let tmp = TempDir::new("crash");
    let logs = tmp.join("logs");
    generate(&logs, "2");
    let logs = logs.to_str().unwrap();
    let trips = tmp.join("trips");
    let trips = trips.to_str().unwrap();

    let batch = stdout_of(&["analyze", logs], &[]);
    let out = run(
        &["shard-analyze", logs, "--shards", "2"],
        &one_shot_chaos("abort:0:1000", trips),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "supervisor failed:\n{stderr}");
    assert!(
        stderr.contains("retrying"),
        "expected a retry notice on stderr, got:\n{stderr}"
    );
    assert_eq!(
        out.stdout, batch,
        "output after crash-and-retry differs from analyze"
    );
    // The injector really fired exactly once.
    assert_eq!(std::fs::read_to_string(trips).unwrap().lines().count(), 1);
}

#[test]
fn a_hung_worker_is_timed_out_killed_and_retried() {
    let tmp = TempDir::new("hang");
    let logs = tmp.join("logs");
    generate(&logs, "2");
    let logs = logs.to_str().unwrap();
    let trips = tmp.join("trips");
    let trips = trips.to_str().unwrap();

    let batch = stdout_of(&["analyze", logs], &[]);
    let out = run(
        &["shard-analyze", logs, "--shards", "2", "--timeout", "2"],
        &one_shot_chaos("hang:1:500", trips),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "supervisor failed:\n{stderr}");
    assert!(
        stderr.contains("timed out"),
        "expected a timeout notice on stderr, got:\n{stderr}"
    );
    assert_eq!(
        out.stdout, batch,
        "output after hang-timeout-retry differs from analyze"
    );
}

#[test]
fn a_torn_snapshot_is_rejected_and_retried() {
    let tmp = TempDir::new("torn");
    let logs = tmp.join("logs");
    generate(&logs, "2");
    let logs = logs.to_str().unwrap();
    let trips = tmp.join("trips");
    let trips = trips.to_str().unwrap();

    let batch = stdout_of(&["analyze", logs], &[]);
    let out = run(
        &["shard-analyze", logs, "--shards", "2"],
        &one_shot_chaos("torn:1:500", trips),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "supervisor failed:\n{stderr}");
    assert!(
        stderr.contains("rejected snapshot"),
        "expected a snapshot-rejection notice on stderr, got:\n{stderr}"
    );
    assert_eq!(
        out.stdout, batch,
        "output after torn-snapshot-retry differs from analyze"
    );
}

#[test]
fn exhausted_retries_abort_strictly_with_no_partial_output() {
    let tmp = TempDir::new("strict");
    let logs = tmp.join("logs");
    generate(&logs, "2");
    let logs = logs.to_str().unwrap();

    // No trip budget: the targeted shard fails on every attempt.
    let out = run(
        &["shard-analyze", logs, "--shards", "2", "--retries", "1"],
        &[("ASTRA_SHARD_CHAOS", "abort:0:1000")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "strict mode must fail");
    assert_eq!(
        out.status.code(),
        Some(1),
        "strict failure is a plain error"
    );
    assert!(
        out.stdout.is_empty(),
        "strict mode leaked partial output:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        stderr.contains("failed permanently"),
        "expected a permanent-failure notice on stderr, got:\n{stderr}"
    );
    assert!(
        stderr.contains("--degraded"),
        "strict failure should hint at --degraded, got:\n{stderr}"
    );
}

#[test]
fn degraded_mode_emits_a_partial_report_with_banner_and_exit_code_3() {
    let tmp = TempDir::new("degraded");
    let logs = tmp.join("logs");
    generate(&logs, "2");
    let logs = logs.to_str().unwrap();

    let out = run(
        &[
            "shard-analyze",
            logs,
            "--shards",
            "2",
            "--retries",
            "1",
            "--degraded",
        ],
        &[("ASTRA_SHARD_CHAOS", "abort:0:1000")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(3),
        "degraded partial output must use its own exit code; stderr:\n{stderr}"
    );
    assert!(
        stdout.starts_with("DEGRADED: missing racks 0..1"),
        "expected the missing-racks banner first, got:\n{stdout}"
    );
    assert!(
        stdout.contains("faults on"),
        "expected a (partial) summary after the banner, got:\n{stdout}"
    );
    // The partial report covers only the surviving shard, so it must
    // differ from the full analysis.
    let batch = stdout_of(&["analyze", logs], &[]);
    assert_ne!(out.stdout, batch, "degraded output should be partial");
}

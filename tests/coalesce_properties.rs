//! Property-based tests of the coalescing and mitigation invariants.
//!
//! The generators produce arbitrary (not merely realistic) CE record
//! sets, so these properties must hold for *any* input a log could
//! contain — the analyzer is meant for real site data, not only for our
//! simulator's output.

use astra_core::coalesce::{coalesce, CoalesceConfig};
use astra_core::mitigation::{
    exclusion_curve, simulate_retirement, smallest_exclusion_for, RetirementPolicy,
};
use astra_core::pipeline::Analysis;
use astra_core::ObservedMode;
use astra_logs::CeRecord;
use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId, SystemConfig};
use astra_util::Minute;
use proptest::prelude::*;

/// Strategy: one CE record confined to a small coordinate space so that
/// interesting collisions (same bank, same address, shared lanes) are
/// common.
fn arb_record() -> impl Strategy<Value = CeRecord> {
    (
        0i64..(200 * 1440),
        0u32..6,
        0u8..16,
        0u8..2,
        0u16..16,
        0u16..8,
        0u16..64,
        0u64..128,
        0u32..0x100,
    )
        .prop_map(
            |(minutes, node, slot_idx, rank, bank, col, bit, addr_sel, synd)| {
                let slot = DimmSlot::from_index(slot_idx).expect("slot < 16");
                CeRecord {
                    time: Minute::from_i64(minutes),
                    node: NodeId(node),
                    socket: slot.socket(),
                    slot,
                    rank: RankId(rank),
                    bank,
                    row: None,
                    col,
                    bit_pos: bit,
                    addr: PhysAddr(addr_sel * 64),
                    syndrome: synd,
                }
            },
        )
}

fn arb_records() -> impl Strategy<Value = Vec<CeRecord>> {
    proptest::collection::vec(arb_record(), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prop_every_record_attributed_exactly_once(records in arb_records()) {
        let faults = coalesce(&records, &CoalesceConfig::default());
        let mut seen = vec![false; records.len()];
        for f in &faults {
            prop_assert_eq!(f.error_count as usize, f.record_indices.len());
            for &i in &f.record_indices {
                prop_assert!(!seen[i as usize], "record {} attributed twice", i);
                seen[i as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&v| v), "unattributed records exist");
    }

    #[test]
    fn prop_fault_fields_are_consistent(records in arb_records()) {
        let faults = coalesce(&records, &CoalesceConfig::default());
        for f in &faults {
            prop_assert!(f.first_seen <= f.last_seen);
            prop_assert!(f.error_count >= 1);
            // Every attributed record matches the fault's device population.
            for &i in &f.record_indices {
                let rec = &records[i as usize];
                prop_assert_eq!(rec.node, f.node);
                prop_assert_eq!(rec.slot, f.slot);
                prop_assert_eq!(rec.rank, f.rank);
                if let Some(bank) = f.bank {
                    prop_assert_eq!(rec.bank, bank);
                }
                if let Some(col) = f.col {
                    prop_assert_eq!(rec.col, col);
                }
            }
            // Mode-specific footprint guarantees.
            match f.mode {
                ObservedMode::SingleBit => {
                    let mut pairs: Vec<(u64, u16)> = f
                        .record_indices
                        .iter()
                        .map(|&i| (records[i as usize].addr.0, records[i as usize].bit_pos))
                        .collect();
                    pairs.dedup();
                    pairs.sort_unstable();
                    pairs.dedup();
                    prop_assert_eq!(pairs.len(), 1, "single-bit spans locations");
                }
                ObservedMode::SingleWord => {
                    let mut addrs: Vec<u64> = f
                        .record_indices
                        .iter()
                        .map(|&i| records[i as usize].addr.0)
                        .collect();
                    addrs.sort_unstable();
                    addrs.dedup();
                    prop_assert_eq!(addrs.len(), 1, "single-word spans addresses");
                }
                ObservedMode::SingleColumn => {
                    prop_assert!(f.col.is_some());
                }
                ObservedMode::SingleBank => {
                    prop_assert!(f.bank.is_some());
                    prop_assert!(f.col.is_none());
                }
                ObservedMode::RankLevel => {
                    prop_assert!(f.bank.is_none());
                    // All errors share one bit lane.
                    for &i in &f.record_indices {
                        prop_assert_eq!(records[i as usize].bit_pos, f.bit_pos);
                    }
                }
            }
        }
    }

    #[test]
    fn prop_order_invariance(mut records in arb_records(), seed in 0u64..1000) {
        let a = coalesce(&records, &CoalesceConfig::default());
        // Deterministic shuffle.
        let mut rng = astra_util::DetRng::new(seed);
        for i in (1..records.len()).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            records.swap(i, j);
        }
        let b = coalesce(&records, &CoalesceConfig::default());
        prop_assert_eq!(a.len(), b.len());
        // Same (mode, count, location) multiset.
        let key = |f: &astra_core::ObservedFault| {
            (f.node.0, f.slot.index(), f.rank.0, f.bank, f.mode, f.error_count)
        };
        let mut ka: Vec<_> = a.iter().map(key).collect();
        let mut kb: Vec<_> = b.iter().map(key).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        prop_assert_eq!(ka, kb);
    }

    #[test]
    fn prop_retirement_conserves_errors(
        records in arb_records(),
        threshold in 1u64..20,
        budget in 1u64..8,
    ) {
        let faults = coalesce(&records, &CoalesceConfig::default());
        for policy in [
            RetirementPolicy::None,
            RetirementPolicy::Threshold { ce_threshold: threshold },
            RetirementPolicy::Budgeted {
                ce_threshold: threshold,
                max_pages_per_fault: budget,
            },
        ] {
            let out = simulate_retirement(&records, &faults, policy);
            prop_assert_eq!(
                out.residual_errors + out.errors_avoided,
                records.len() as u64,
                "errors must be conserved under {:?}", policy
            );
            if policy == RetirementPolicy::None {
                prop_assert_eq!(out.errors_avoided, 0);
                prop_assert_eq!(out.retired_pages, 0);
            }
        }
    }

    #[test]
    fn prop_stricter_policy_never_avoids_less(
        records in arb_records(),
        threshold in 2u64..20,
    ) {
        let faults = coalesce(&records, &CoalesceConfig::default());
        let strict = simulate_retirement(
            &records,
            &faults,
            RetirementPolicy::Threshold { ce_threshold: threshold - 1 },
        );
        let lax = simulate_retirement(
            &records,
            &faults,
            RetirementPolicy::Threshold { ce_threshold: threshold },
        );
        prop_assert!(
            strict.errors_avoided >= lax.errors_avoided,
            "lower threshold avoided {} < higher threshold {}",
            strict.errors_avoided,
            lax.errors_avoided
        );
    }
}

/// The generated records use nodes 0..6, which fit on a one-rack machine.
fn analysis_of(records: Vec<CeRecord>) -> Analysis {
    Analysis::run(SystemConfig::scaled(1), records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_exclusion_curve_is_monotone_and_bounded(records in arb_records(), max_k in 0usize..20) {
        let analysis = analysis_of(records);
        let nodes = analysis.system.node_count() as usize;
        let curve = exclusion_curve(&analysis, max_k);
        prop_assert_eq!(curve.len(), max_k.min(nodes) + 1);
        prop_assert_eq!(curve[0].excluded_nodes, 0);
        prop_assert_eq!(curve[0].errors_avoided_fraction, 0.0);
        for (k, point) in curve.iter().enumerate() {
            prop_assert_eq!(point.excluded_nodes, k);
            prop_assert!((0.0..=1.0).contains(&point.errors_avoided_fraction));
            // Capacity cost is exactly linear in nodes excluded.
            prop_assert!((point.capacity_lost_fraction - k as f64 / nodes as f64).abs() < 1e-12);
        }
        for pair in curve.windows(2) {
            prop_assert!(
                pair[1].errors_avoided_fraction >= pair[0].errors_avoided_fraction,
                "excluding more nodes can never avoid fewer errors"
            );
        }
    }

    #[test]
    fn prop_smallest_exclusion_agrees_with_the_curve(records in arb_records()) {
        let total = records.len();
        let analysis = analysis_of(records);
        let nodes = analysis.system.node_count() as usize;
        let k = smallest_exclusion_for(&analysis, 0.5);
        prop_assert!(k <= nodes);
        if total > 0 {
            // k is sufficient, and minimal: the curve crosses 0.5 at k and
            // not before.
            let curve = exclusion_curve(&analysis, nodes);
            prop_assert!(curve[k].errors_avoided_fraction >= 0.5);
            if k > 0 {
                prop_assert!(curve[k - 1].errors_avoided_fraction < 0.5);
            }
            // A zero target needs no exclusions at all (with zero total
            // errors every target is unreachable and saturates instead —
            // see `exclusion_on_empty_stream_saturates`).
            prop_assert_eq!(smallest_exclusion_for(&analysis, 0.0), 0);
        }
    }

    #[test]
    fn prop_unreachable_exclusion_target_returns_whole_machine(records in arb_records()) {
        let analysis = analysis_of(records);
        let nodes = analysis.system.node_count() as usize;
        // No subset of nodes can remove 150% of the errors: the answer
        // saturates at "every node" rather than panicking or lying.
        prop_assert_eq!(smallest_exclusion_for(&analysis, 1.5), nodes);
    }
}

#[test]
fn exclusion_on_empty_stream_saturates() {
    // With zero errors the share curve is undefined; any positive target
    // is unreachable and reports the whole machine, while the curve itself
    // stays flat at zero avoidance.
    let analysis = analysis_of(Vec::new());
    let nodes = analysis.system.node_count() as usize;
    assert_eq!(smallest_exclusion_for(&analysis, 0.5), nodes);
    let curve = exclusion_curve(&analysis, 5);
    assert_eq!(curve.len(), 6);
    for point in &curve {
        assert_eq!(point.errors_avoided_fraction, 0.0);
    }
}

//! Integration: the paper's qualitative findings hold at a moderate scale
//! (8 racks, 576 nodes) under the default calibrated profiles.
//!
//! Absolute totals are checked in EXPERIMENTS.md against a full 36-rack
//! run; here the *shape* claims — the conclusions the paper draws — are
//! asserted mechanically so a regression in any simulator or analyzer
//! component fails the build.

use astra_core::experiments::{self, fig13_14};
use astra_core::pipeline::{Analysis, Dataset};
use astra_core::tempcorr::TempCorrConfig;
use astra_util::time::{het_firmware_date, sensor_span, study_span, TimeSpan};
use astra_util::{CalDate, MINUTES_PER_DAY};

fn scaled_dataset() -> (Dataset, Analysis) {
    let ds = Dataset::generate(8, 42);
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
    (ds, analysis)
}

fn quick() -> TempCorrConfig {
    TempCorrConfig {
        max_ce_samples: 400,
        window_stride: 60,
        monthly_stride: 2 * MINUTES_PER_DAY,
        bin_width: 1.0,
    }
}

#[test]
fn headline_error_volume_scales_to_the_paper() {
    let (ds, analysis) = scaled_dataset();
    // Paper: 4,369,731 CEs on 2,592 nodes → ~1,686 per node over the span.
    let per_node = analysis.total_errors() as f64 / f64::from(ds.system.node_count());
    assert!(
        (800.0..3000.0).contains(&per_node),
        "per-node CE volume {per_node}"
    );
}

#[test]
fn section_3_2_fault_error_distinction() {
    let (_, analysis) = scaled_dataset();
    let f4 = experiments::fig4::compute(&analysis, study_span());
    let f6 = experiments::fig6::compute(&analysis);

    // Median errors per fault is 1; max is in the tens of thousands.
    let v = f4.violin.as_ref().expect("faults exist");
    assert_eq!(v.median, 1.0);
    assert!(v.max > 20_000 && v.max <= 91_000, "max {}", v.max);

    // Mode ordering matches the paper: bit >> column > word > bank among
    // the per-bank modes.
    use astra_core::ObservedMode as M;
    let bit = f4.mode_total(M::SingleBit);
    let word = f4.mode_total(M::SingleWord);
    let col = f4.mode_total(M::SingleColumn);
    let bank = f4.mode_total(M::SingleBank);
    assert!(
        bit > col && col > word && word > bank,
        "{bit} {col} {word} {bank}"
    );

    // Faults uniform where errors are not.
    assert!(f6.faults_flatter_than_errors());
    let chi = f6.bank_fault_chi2.expect("bank faults");
    assert!(chi.is_uniform_at(0.01), "bank faults p {}", chi.p_value);
    let chi_err = f6.bank_error_chi2.expect("bank errors");
    assert!(!chi_err.is_uniform_at(0.05));

    // Slight downward error trend over the interval.
    assert!(f4.trends_downward(), "fault onsets {:?}", f4.fault_onsets);
}

#[test]
fn section_3_2_node_concentration() {
    let (ds, analysis) = scaled_dataset();
    let f5 = experiments::fig5::compute(&analysis);
    // >60% of nodes see no CEs.
    assert!(
        f5.zero_ce_fraction() > 0.55,
        "zero fraction {}",
        f5.zero_ce_fraction()
    );
    // Top 8-equivalent nodes carry >50%: 8 × (576/2592) ≈ 2 nodes.
    let scaled_top = ((8.0 * f64::from(ds.system.node_count()) / 2592.0).round() as usize).max(1);
    assert!(
        f5.top_k_share(scaled_top) > 0.4,
        "top {} share {}",
        scaled_top,
        f5.top_k_share(scaled_top)
    );
    // Top 2% of nodes carry ~90%.
    assert!(
        f5.top_percent_share(2.0) > 0.75,
        "top 2% share {}",
        f5.top_percent_share(2.0)
    );
    // Faults per node follow a heavy-tailed (power-law-like) distribution.
    let fit = f5.fault_power_law.expect("fit");
    assert!(fit.alpha > 1.1 && fit.alpha < 3.5, "alpha {}", fit.alpha);
}

#[test]
fn section_3_2_positional_skew_in_rank_and_slot() {
    let (_, analysis) = scaled_dataset();
    let f7 = experiments::fig7::compute(&analysis);
    assert!(f7.rank0_dominates());
    assert!(f7.hot_slots_dominate());
    // Rank skew is moderate, not extreme (paper's bars are ~60/40).
    let ratio = f7.faults_by_rank[0] as f64 / f7.faults_by_rank[1].max(1) as f64;
    assert!((1.1..2.2).contains(&ratio), "rank ratio {ratio}");
}

#[test]
fn section_3_3_no_temperature_or_power_correlation() {
    let (ds, analysis) = scaled_dataset();
    let f9 = experiments::fig9::compute(&analysis, &ds.telemetry, sensor_span(), &quick());
    assert!(
        f9.no_strong_correlation(0.35),
        "Fig 9 slopes too strong:\n{}",
        f9.render()
    );

    let f13 = fig13_14::compute_fig13(&analysis, &ds.telemetry, sensor_span(), &quick());
    assert!(
        f13.no_monotone_trend(0.5),
        "Fig 13 trend:\n{}",
        f13.render()
    );
    // CPU1 hotter than CPU2 in every decile.
    for (a, b) in f13.cpu[0].points.iter().zip(&f13.cpu[1].points) {
        assert!(a.0 > b.0, "CPU1 {} <= CPU2 {}", a.0, b.0);
    }
    // Decile spreads: ~7C CPU, ~4C DIMM (generous bands).
    for s in &f13.cpu {
        let spread = fig13_14::decile_spread(s).unwrap();
        assert!((3.0..12.0).contains(&spread), "{} spread {spread}", s.label);
    }
    for s in &f13.dimm {
        let spread = fig13_14::decile_spread(s).unwrap();
        assert!((1.5..8.0).contains(&spread), "{} spread {spread}", s.label);
    }

    let f14 = fig13_14::compute_fig14(&analysis, &ds.telemetry, sensor_span(), &quick());
    assert!(f14.no_strong_power_trend(0.55), "Fig 14:\n{}", f14.render());
    assert!(f14.hot_series_shifted_right());
}

#[test]
fn section_3_4_positional_effects() {
    let (_, analysis) = scaled_dataset();
    let f10 = experiments::fig10_12::compute(&analysis);

    // Fig 10: errors peak at the bottom; fault spread smaller than error
    // spread.
    assert!(f10.errors_by_region[0] > f10.errors_by_region[1]);
    assert!(f10.fault_region_spread_is_smaller());

    // Fig 12: an error-spike rack exists and vanishes in fault counts.
    assert!(
        f10.error_spike_ratio() > 1.5,
        "spike ratio {}",
        f10.error_spike_ratio()
    );
    assert!(f10.spike_rack_vanishes_in_faults(2.5));

    // Faults per rack show no rack standing far out the way errors do.
    // (A χ² test is too strict here: per-node fault counts are clustered,
    // not Poisson, and would reject even on the real machine. The paper's
    // claim is the visual one — no spike — so compare relative spreads.)
    let cv = |counts: &[u64]| {
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / counts.len() as f64;
        var.sqrt() / mean
    };
    assert!(
        cv(&f10.faults_by_rack) < 0.5 * cv(&f10.errors_by_rack),
        "fault CV {} vs error CV {}",
        cv(&f10.faults_by_rack),
        cv(&f10.errors_by_rack)
    );
}

#[test]
fn section_3_5_uncorrectable_errors() {
    // Full scale for a meaningful Poisson mean.
    let ds = Dataset::generate(36, 42);
    let window = TimeSpan::dates(het_firmware_date(), CalDate::new(2019, 9, 14));
    let f15 = experiments::fig15::compute(&ds.sim.het_log, window, ds.system.dimm_count());
    // Paper: 0.00948 DUE/DIMM/yr, FIT ≈ 1081.
    assert!(
        (0.005..0.016).contains(&f15.dues.dues_per_dimm_year),
        "DUE rate {}",
        f15.dues.dues_per_dimm_year
    );
    assert!(
        (550.0..1900.0).contains(&f15.dues.fit_per_dimm),
        "FIT {}",
        f15.dues.fit_per_dimm
    );
    // Nothing before the firmware date.
    let pre = TimeSpan::dates(study_span().start.date(), het_firmware_date());
    assert_eq!(astra_core::het::all_events(&ds.sim.het_log, pre).total(), 0);
}

#[test]
fn table_1_replacement_rates() {
    let (ds, _) = scaled_dataset();
    let t1 = experiments::table1::compute(&ds.system, &ds.replacements);
    // Percent columns approximate Table 1: 16.1 / 1.8 / 3.7.
    assert!(
        (t1.rows[0].percent() - 16.1).abs() < 2.0,
        "{}",
        t1.rows[0].percent()
    );
    assert!(
        (t1.rows[1].percent() - 1.8).abs() < 0.8,
        "{}",
        t1.rows[1].percent()
    );
    assert!(
        (t1.rows[2].percent() - 3.7).abs() < 0.8,
        "{}",
        t1.rows[2].percent()
    );
}

//! Subprocess lifecycle tests for `astra-mem serve`: startup banner,
//! readiness, query surface, graceful shutdown over HTTP and over stdin
//! EOF, and kill-and-resume from the per-site checkpoint.
//!
//! Subprocesses, not in-process calls, because the daemon's process
//! contract is under test: the `listening on` banner, the exit code, and
//! the checkpoint a restart finds on disk. The tiny typed client in
//! `astra_serve::http` stands in for curl — CI has no network tools.

use std::io::{BufRead as _, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use astra_serve::http;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_astra-mem")
}

/// Unique per call; removed on drop even if the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "astra-serve-daemon-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = Command::new(bin()).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "astra-mem {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn generate(dir: &Path) {
    stdout_of(&[
        "generate",
        "--racks",
        "1",
        "--seed",
        "42",
        "--out",
        dir.to_str().unwrap(),
    ]);
}

/// A running `astra-mem serve` child with its bound address scraped from
/// the startup banner. Killed on drop so a failing test can't leak it.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .arg("serve")
            .args(args)
            .args(["--listen", "127.0.0.1:0", "--poll-ms", "20"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn astra-mem serve");
        let mut banner = String::new();
        BufReader::new(child.stdout.as_mut().expect("stdout piped"))
            .read_line(&mut banner)
            .expect("read startup banner");
        let addr = banner
            .trim()
            .strip_prefix("listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .parse()
            .expect("banner address parses");
        Daemon { child, addr }
    }

    /// Poll `/health` until every site is ready.
    fn wait_ready(&self) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok(health) = http::get(self.addr, "/health") {
                if health.body.contains("\"ready\":true") {
                    return;
                }
            }
            assert!(Instant::now() < deadline, "daemon never became ready");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Wait for a clean exit after shutdown was requested.
    fn wait_exit(mut self) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(status) = self.child.try_wait().expect("wait on daemon") {
                assert!(status.success(), "daemon exited with {status}");
                return;
            }
            if Instant::now() >= deadline {
                self.child.kill().ok();
                panic!("daemon did not exit within the deadline");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

#[test]
fn serve_answers_queries_and_shuts_down_over_http() {
    let tmp = TempDir::new("smoke");
    let logs = tmp.join("logs");
    generate(&logs);
    let expected = stdout_of(&["analyze", logs.to_str().unwrap(), "--racks", "1"]);

    let daemon = Daemon::spawn(&[logs.to_str().unwrap(), "--racks", "1"]);
    daemon.wait_ready();

    let analysis = http::get(daemon.addr, "/site/logs/analysis").unwrap();
    assert_eq!(analysis.status, 200);
    assert_eq!(
        analysis.body.as_bytes(),
        &expected[..],
        "served analysis differs from analyze stdout"
    );

    let metrics = http::get(daemon.addr, "/metrics").unwrap();
    assert!(
        metrics.body.contains("serve_requests_total")
            && metrics.body.contains("serve_request_seconds"),
        "metrics must export the serve counters and latency histogram: {}",
        metrics.body
    );
    let jsonl = http::get(daemon.addr, "/metrics.jsonl").unwrap();
    assert!(jsonl.body.contains("serve.requests"), "{}", jsonl.body);

    let bye = http::request(daemon.addr, "POST", "/shutdown").unwrap();
    assert_eq!(bye.status, 200);
    daemon.wait_exit();
}

#[test]
fn serve_shuts_down_on_stdin_eof() {
    let tmp = TempDir::new("eof");
    let logs = tmp.join("logs");
    generate(&logs);

    let mut daemon = Daemon::spawn(&[logs.to_str().unwrap(), "--racks", "1"]);
    daemon.wait_ready();
    drop(daemon.child.stdin.take());
    daemon.wait_exit();
}

#[test]
fn serve_tails_two_sites_independently() {
    let tmp = TempDir::new("multi");
    let east = tmp.join("east");
    let west = tmp.join("west");
    generate(&east);
    generate(&west);

    let daemon = Daemon::spawn(&[
        east.to_str().unwrap(),
        west.to_str().unwrap(),
        "--racks",
        "1",
    ]);
    daemon.wait_ready();

    let sites = http::get(daemon.addr, "/sites").unwrap();
    assert!(
        sites.body.contains("\"site\":\"east\"") && sites.body.contains("\"site\":\"west\""),
        "{}",
        sites.body
    );
    let east_analysis = http::get(daemon.addr, "/site/east/analysis").unwrap();
    let west_analysis = http::get(daemon.addr, "/site/west/analysis").unwrap();
    assert_eq!(
        east_analysis.body, west_analysis.body,
        "same seed, same analysis"
    );

    http::request(daemon.addr, "POST", "/shutdown").unwrap();
    daemon.wait_exit();
}

#[test]
fn shutdown_checkpoint_resumes_with_identical_responses() {
    let tmp = TempDir::new("resume");
    let logs = tmp.join("logs");
    generate(&logs);
    let logs_str = logs.to_str().unwrap();

    // First life: ingest everything, record the response bodies, shut
    // down gracefully (which writes the final per-site checkpoint).
    let daemon = Daemon::spawn(&[logs_str, "--racks", "1", "--checkpoint-every", "1"]);
    daemon.wait_ready();
    let first_analysis = http::get(daemon.addr, "/site/logs/analysis").unwrap().body;
    let first_alerts = http::get(daemon.addr, "/site/logs/alerts").unwrap().body;
    let first_summary = http::get(daemon.addr, "/site/logs").unwrap().body;
    assert!(
        first_summary.contains("\"resumed\":false"),
        "{first_summary}"
    );
    http::request(daemon.addr, "POST", "/shutdown").unwrap();
    daemon.wait_exit();
    assert!(
        logs.join("serve.ckpt").exists(),
        "graceful shutdown must leave the final checkpoint behind"
    );

    // Second life: must resume from the checkpoint (not replay) and
    // answer every query byte-identically.
    let daemon = Daemon::spawn(&[logs_str, "--racks", "1"]);
    daemon.wait_ready();
    let summary = http::get(daemon.addr, "/site/logs").unwrap().body;
    assert!(
        summary.contains("\"resumed\":true"),
        "restart must resume from the shutdown checkpoint: {summary}"
    );
    assert_eq!(
        http::get(daemon.addr, "/site/logs/analysis").unwrap().body,
        first_analysis,
        "resumed analysis differs from the pre-shutdown response"
    );
    assert_eq!(
        http::get(daemon.addr, "/site/logs/alerts").unwrap().body,
        first_alerts,
        "resumed alerts differ from the pre-shutdown response"
    );
    http::request(daemon.addr, "POST", "/shutdown").unwrap();
    daemon.wait_exit();
}

#[test]
fn serve_rejects_checkpoint_flag_with_multiple_sites() {
    let tmp = TempDir::new("badflags");
    let a = tmp.join("a");
    let b = tmp.join("b");
    std::fs::create_dir_all(&a).unwrap();
    std::fs::create_dir_all(&b).unwrap();
    let out = Command::new(bin())
        .args([
            "serve",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--checkpoint",
            tmp.join("ck").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("single site"), "stderr: {stderr}");
}

//! Corruption-tolerance equivalence: a lenient ingest over a
//! chaos-corrupted dataset must produce byte-for-byte the output of a
//! clean dataset with exactly the quarantined records removed — no more,
//! no less — at any worker count; strict mode must refuse the corrupted
//! dataset with a typed report; and a checkpoint write torn mid-flight
//! must be detected and salvage-resumed with identical stdout.
//!
//! Subprocesses, not in-process calls, because stdout is the contract
//! under test and the metric registry is process-global. The chaos
//! injection itself runs in-process (`astra_logs::chaos`) so the test
//! can use the manifest's damaged-line list to rebuild the expected
//! clean dataset.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

use astra_logs::chaos;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_astra-mem")
}

/// Unique per call; removed on drop even if the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "astra-chaos-ingest-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Run the binary with optional env overrides; return the raw output.
fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn astra-mem")
}

/// Run, asserting success; return stdout verbatim.
fn stdout_of(args: &[&str], envs: &[(&str, &str)]) -> Vec<u8> {
    let out = run(args, envs);
    assert!(
        out.status.success(),
        "astra-mem {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn generate(dir: &Path) {
    stdout_of(
        &[
            "generate",
            "--racks",
            "1",
            "--seed",
            "42",
            "--out",
            dir.to_str().unwrap(),
        ],
        &[],
    );
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// A generated dataset, a chaos-corrupted copy, and the expected clean
/// dataset (clean minus exactly the records the chaos manifest damaged).
fn corrupted_fixture(tmp: &TempDir, seed: u64) -> (PathBuf, PathBuf, chaos::ChaosManifest) {
    let clean = tmp.join("clean");
    generate(&clean);
    let corrupt = tmp.join("corrupt");
    copy_dir(&clean, &corrupt);
    let manifest = chaos::corrupt_dir(&corrupt, &chaos::ChaosConfig::with_seed(seed)).unwrap();
    assert!(
        manifest.total().total() > 0,
        "chaos must inject at least some corruption"
    );

    let expected = tmp.join("expected");
    copy_dir(&clean, &expected);
    for file in &manifest.files {
        let text = std::fs::read_to_string(clean.join(&file.name)).unwrap();
        let damaged: std::collections::HashSet<usize> =
            file.damaged_clean_lines.iter().copied().collect();
        let mut kept = String::with_capacity(text.len());
        for (i, line) in text.lines().enumerate() {
            if !damaged.contains(&i) {
                kept.push_str(line);
                kept.push('\n');
            }
        }
        std::fs::write(expected.join(&file.name), kept).unwrap();
    }
    (corrupt, expected, manifest)
}

#[test]
fn strict_mode_refuses_a_corrupted_dataset_with_a_typed_report() {
    let tmp = TempDir::new("strict");
    let (corrupt, _, _) = corrupted_fixture(&tmp, 7);
    let corrupt = corrupt.to_str().unwrap();

    for cmd in ["analyze", "stream-analyze"] {
        let out = run(&[cmd, corrupt, "--racks", "1"], &[]);
        assert!(
            !out.status.success(),
            "{cmd} must refuse a corrupted dataset under the strict default"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("corrupt") && stderr.contains("quarantined"),
            "{cmd} stderr must carry the typed report: {stderr}"
        );
        assert!(
            stderr.contains("--lenient"),
            "{cmd} stderr must hint at the lenient escape hatch: {stderr}"
        );
    }
}

#[test]
fn lenient_output_equals_clean_minus_quarantined_at_any_worker_count() {
    let tmp = TempDir::new("equiv");
    let (corrupt, expected, _) = corrupted_fixture(&tmp, 7);
    let corrupt = corrupt.to_str().unwrap();
    let expected = expected.to_str().unwrap();

    // `--max-bad-frac 0.5`: the tiny het.log legitimately loses a third
    // of its lines to the (scaled-down) injection, which the 5% default
    // budget would rightly refuse.
    for workers in ["1", "2", "4"] {
        let envs = [("ASTRA_WORKERS", workers)];
        let want = stdout_of(&["analyze", expected, "--racks", "1"], &envs);
        assert!(!want.is_empty());
        let got = stdout_of(
            &[
                "analyze",
                corrupt,
                "--racks",
                "1",
                "--lenient",
                "--max-bad-frac",
                "0.5",
            ],
            &envs,
        );
        assert_eq!(
            got,
            want,
            "lenient analyze over corrupted logs differs from clean-minus-quarantined \
             at {workers} workers:\n--- expected ---\n{}\n--- got ---\n{}",
            String::from_utf8_lossy(&want),
            String::from_utf8_lossy(&got)
        );
    }

    // The streaming engine enforces the same policy over the same merge.
    let want = stdout_of(&["stream-analyze", expected, "--racks", "1"], &[]);
    let got = stdout_of(
        &[
            "stream-analyze",
            corrupt,
            "--racks",
            "1",
            "--lenient",
            "--max-bad-frac",
            "0.5",
        ],
        &[],
    );
    assert_eq!(got, want, "stream-analyze lenient equivalence broken");

    // `report` additionally consumes het, inventory, and sensor records,
    // so this equivalence proves quarantining is exact on every log.
    let want = stdout_of(&["report", expected, "--racks", "1", "--seed", "42"], &[]);
    let got = stdout_of(
        &[
            "report",
            corrupt,
            "--racks",
            "1",
            "--seed",
            "42",
            "--lenient",
            "--max-bad-frac",
            "0.5",
        ],
        &[],
    );
    assert_eq!(got, want, "report lenient equivalence broken");
}

#[test]
fn fsck_report_matches_the_injected_manifest_exactly() {
    let tmp = TempDir::new("fsck");
    let (corrupt, expected, manifest) = corrupted_fixture(&tmp, 11);

    // Corrupted dataset: per-file counts must equal what chaos injected,
    // and finding corruption is a nonzero exit.
    let out = run(&["fsck", corrupt.to_str().unwrap()], &[]);
    assert!(!out.status.success(), "fsck of a dirty dataset must fail");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        manifest.report(),
        "fsck report differs from the injected-corruption manifest"
    );

    // The rebuilt expected dataset is clean, and clean is exit 0.
    let out = run(&["fsck", expected.to_str().unwrap()], &[]);
    assert!(out.status.success(), "fsck of a clean dataset must pass");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("total: clean"),
        "clean fsck report: {stdout}"
    );
}

#[test]
fn torn_checkpoint_is_salvaged_and_resume_output_is_identical() {
    let tmp = TempDir::new("torn");
    let logs = tmp.join("logs");
    generate(&logs);
    let logs = logs.to_str().unwrap();
    let ck = tmp.join("ck.txt");
    let ck_str = ck.to_str().unwrap();

    let batch = stdout_of(&["analyze", logs, "--racks", "1"], &[]);

    // Interrupt mid-stream with a complete checkpoint on disk...
    let first = stdout_of(
        &[
            "stream-analyze",
            logs,
            "--racks",
            "1",
            "--stop-after",
            "20000",
            "--checkpoint",
            ck_str,
        ],
        &[],
    );
    assert!(first.is_empty(), "interrupted run leaked stdout");

    // ...then tear a later checkpoint write: a partial next snapshot
    // strands in `ck.txt.tmp`, the rename never happens.
    let snapshot = std::fs::read(&ck).unwrap();
    chaos::tear_checkpoint(&ck, &snapshot, (snapshot.len() / 2) as u64).unwrap();

    let out = run(
        &["stream-analyze", logs, "--racks", "1", "--resume", ck_str],
        &[],
    );
    assert!(
        out.status.success(),
        "salvage resume failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("torn checkpoint"),
        "resume must report the torn file it skipped: {stderr}"
    );
    assert_eq!(
        out.stdout, batch,
        "salvage-resumed stream-analyze differs from analyze"
    );

    // The complementary tear: the next snapshot was written out in full
    // but the rename never happened — the fresher `.tmp` must win.
    let fresher = TempDir::new("fresher");
    let logs2 = fresher.join("logs");
    generate(&logs2);
    let logs2 = logs2.to_str().unwrap();
    let ck_a = fresher.join("a.txt");
    let ck_b = fresher.join("b.txt");
    for (path, stop) in [(&ck_a, "20000"), (&ck_b, "40000")] {
        stdout_of(
            &[
                "stream-analyze",
                logs2,
                "--racks",
                "1",
                "--stop-after",
                stop,
                "--checkpoint",
                path.to_str().unwrap(),
            ],
            &[],
        );
    }
    // a.txt = older checkpoint; a.txt.tmp = complete fresher snapshot.
    let complete = std::fs::read(&ck_b).unwrap();
    chaos::tear_checkpoint(&ck_a, &complete, complete.len() as u64).unwrap();
    let out = run(
        &[
            "stream-analyze",
            logs2,
            "--racks",
            "1",
            "--resume",
            ck_a.to_str().unwrap(),
        ],
        &[],
    );
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("salvaged checkpoint"),
        "resume must report salvaging the fresher snapshot: {stderr}"
    );
    assert_eq!(
        out.stdout, batch,
        "resume from the salvaged fresher snapshot differs from analyze"
    );
}

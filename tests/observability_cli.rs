//! End-to-end observability: drive the `astra-mem` binary as a subprocess
//! and check the metrics it exports.
//!
//! Subprocesses, not in-process calls, because the metric registry is
//! process-global: parallel tests in one binary would see each other's
//! counters. Each subprocess starts with a clean registry and each test
//! gets its own dataset directory.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_astra-mem")
}

/// Unique per call; removed on drop even if the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        TempDir(std::env::temp_dir().join(format!(
            "astra-obs-cli-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        )))
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run(args: &[&str]) {
    let out = Command::new(bin()).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "astra-mem {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn generate(dir: &Path) {
    run(&[
        "generate",
        "--racks",
        "1",
        "--seed",
        "7",
        "--out",
        dir.to_str().unwrap(),
    ]);
}

/// Pull one `"field":value` number out of the JSONL line for `name`.
fn metric_value(jsonl: &str, name: &str) -> Option<f64> {
    let line = jsonl
        .lines()
        .find(|l| l.contains(&format!("\"name\":\"{name}\"")))?;
    let tail = line.split("\"value\":").nth(1)?;
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

#[test]
fn generate_writes_dataset_metrics() {
    let dir = TempDir::new("gen");
    generate(dir.path());
    let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("metrics.jsonl");
    let offered = metric_value(&jsonl, "faultsim.events_offered").expect("events_offered");
    let logged = metric_value(&jsonl, "faultsim.ces_logged").expect("ces_logged");
    assert!(offered > 0.0);
    assert!(logged <= offered, "can't log more CEs than were offered");
    assert!(metric_value(&jsonl, "faultsim.ecc.corrected").unwrap() > 0.0);
}

#[test]
fn analyze_exports_nonzero_parse_throughput() {
    let dir = TempDir::new("analyze");
    generate(dir.path());
    let metrics = dir.join("m.json");
    run(&[
        "analyze",
        dir.path().to_str().unwrap(),
        "--racks",
        "1",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    let jsonl = std::fs::read_to_string(&metrics).expect("metrics file");

    // Nonzero parse throughput: lines were parsed and time was recorded.
    let lines = metric_value(&jsonl, "parse.ce.lines_ok").expect("parse.ce.lines_ok");
    assert!(lines > 0.0, "no CE lines parsed");
    let timing = jsonl
        .lines()
        .find(|l| l.contains("parse.ce") && l.contains("\"kind\":\"timing\""))
        .expect("a timing for the ce parse stage");
    let sum = timing.split("\"sum\":").nth(1).expect("sum field");
    let ns: f64 = sum
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    assert!(ns > 0.0, "parse stage recorded zero elapsed time");

    // The analysis side also ran.
    assert!(metric_value(&jsonl, "coalesce.records_in").unwrap() > 0.0);
    assert!(metric_value(&jsonl, "coalesce.faults_out").unwrap() > 0.0);
}

#[test]
fn corrupt_lines_surface_in_skip_counters() {
    let dir = TempDir::new("corrupt");
    generate(dir.path());
    // Corrupt the CE log: inject lines no parser accepts.
    let ce = dir.join("ce.log");
    let mut text = std::fs::read_to_string(&ce).unwrap();
    for i in 0..5 {
        text.push_str(&format!("@@ corrupted line {i} @@\n"));
    }
    std::fs::write(&ce, text).unwrap();

    // Strict is the default, so quarantining requires opting in.
    let metrics = dir.join("m.json");
    run(&[
        "analyze",
        dir.path().to_str().unwrap(),
        "--racks",
        "1",
        "--lenient",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    let skipped = metric_value(&jsonl, "parse.ce.lines_skipped").expect("skip counter");
    assert_eq!(skipped, 5.0, "each injected corrupt line must be counted");
    let reason = metric_value(&jsonl, "ingest.quarantined.unknown-format")
        .expect("typed quarantine counter");
    assert_eq!(reason, 5.0, "injected lines classify as unknown-format");
}

#[test]
fn report_metrics_span_all_stages_and_are_deterministic() {
    let dir = TempDir::new("report");
    generate(dir.path());
    let mut exports = Vec::new();
    for name in ["m1.json", "m2.json"] {
        let metrics = dir.join(name);
        run(&[
            "report",
            dir.path().to_str().unwrap(),
            "--racks",
            "1",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        exports.push(std::fs::read_to_string(&metrics).unwrap());
    }

    // Acceptance: >= 12 distinct metrics spanning faultsim, parse (logs),
    // coalesce, and experiments.
    let names: Vec<&str> = exports[0]
        .lines()
        .filter_map(|l| l.split("\"name\":\"").nth(1)?.split('"').next())
        .collect();
    assert!(names.len() >= 12, "only {} metrics exported", names.len());
    for stage in ["faultsim.", "parse.", "coalesce.", "experiments."] {
        assert!(
            names.iter().any(|n| n.starts_with(stage)),
            "no {stage}* metric in export; got {names:?}"
        );
    }

    // Determinism: everything except wall-clock timings is identical
    // across two runs over the same directory.
    let strip = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.contains("\"kind\":\"timing\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&exports[0]),
        strip(&exports[1]),
        "non-timing metrics differ between identical runs"
    );
}

#[test]
fn stats_prints_throughput_and_rates() {
    let dir = TempDir::new("stats");
    generate(dir.path());
    let out = Command::new(bin())
        .args(["stats", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parse stages:"), "{text}");
    assert!(text.contains("throughput"), "{text}");
    assert!(text.contains("skip %"), "{text}");
    assert!(text.contains("kernel-buffer loss"), "{text}");
    assert!(text.contains("errors/fault"), "{text}");
}

#[test]
fn stats_without_metrics_file_prints_actionable_hint() {
    let dir = TempDir::new("statshint");
    generate(dir.path());
    std::fs::remove_file(dir.join("metrics.jsonl")).unwrap();
    let out = Command::new(bin())
        .args(["stats", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stats should still run without metrics"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("metrics.jsonl"), "{err}");
    assert!(
        err.contains("astra-mem generate"),
        "hint names the fix: {err}"
    );
    // The live-measured sections still render.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parse stages:"), "{text}");
}

#[test]
fn load_errors_distinguish_missing_from_corrupt() {
    let dir = TempDir::new("loaderr");
    generate(dir.path());

    // Required log deleted → "missing" plus a hint naming generate.
    std::fs::remove_file(dir.join("ce.log")).unwrap();
    let out = Command::new(bin())
        .args(["analyze", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing") && err.contains("ce.log"), "{err}");
    assert!(err.contains("hint:") && err.contains("generate"), "{err}");

    // Present but undecodable → the strict default refuses with a typed
    // quarantine report and points at fsck / --lenient.
    std::fs::write(dir.join("ce.log"), [0xFF, 0xFE, b'\n']).unwrap();
    let out = Command::new(bin())
        .args(["report", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("corrupt") && err.contains("ce.log"), "{err}");
    assert!(err.contains("bad-utf8"), "typed reason in report: {err}");
    assert!(
        err.contains("hint:") && err.contains("--lenient") && err.contains("fsck"),
        "{err}"
    );
}

#[test]
fn predict_reports_metrics_and_ground_truth_join() {
    let dir = TempDir::new("predict");
    generate(dir.path());
    let metrics = dir.join("m.json");
    let out = Command::new(bin())
        .args([
            "predict",
            dir.path().to_str().unwrap(),
            "--racks",
            "1",
            "--seed",
            "7",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "predict failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ground truth:"), "{text}");
    assert!(text.contains("precision"), "{text}");
    assert!(text.contains("fault-recall"), "{text}");
    assert!(text.contains("UE-recall"), "{text}");
    assert!(text.contains("proactive mitigation"), "{text}");

    // The engine's obs instrumentation made it into the export.
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    assert!(metric_value(&jsonl, "predict.records_in").expect("records_in") > 0.0);
    assert!(metric_value(&jsonl, "predict.ranks_tracked").expect("ranks_tracked") > 0.0);
    assert!(
        metric_value(&jsonl, "predict.alerts").expect("alerts") > 0.0,
        "the default predictors should alert on a 1-rack simulation"
    );
}

#[test]
fn bad_arguments_are_rejected() {
    for args in [
        &["generate", "--racks", "0", "--out", "/tmp/x"][..],
        &["analyze", "/tmp/a", "/tmp/b"][..],
    ] {
        let out = Command::new(bin()).args(args).output().expect("spawn");
        assert!(!out.status.success(), "astra-mem {args:?} should fail");
    }
}

//! End-to-end observability: drive the `astra-mem` binary as a subprocess
//! and check the metrics it exports.
//!
//! Subprocesses, not in-process calls, because the metric registry is
//! process-global: parallel tests in one binary would see each other's
//! counters. Each subprocess starts with a clean registry and each test
//! gets its own dataset directory.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_astra-mem")
}

/// Unique per call; removed on drop even if the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        TempDir(std::env::temp_dir().join(format!(
            "astra-obs-cli-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        )))
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run(args: &[&str]) {
    let out = Command::new(bin()).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "astra-mem {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn generate(dir: &Path) {
    run(&[
        "generate",
        "--racks",
        "1",
        "--seed",
        "7",
        "--out",
        dir.to_str().unwrap(),
    ]);
}

/// Pull one `"field":value` number out of the JSONL line for `name`.
fn metric_value(jsonl: &str, name: &str) -> Option<f64> {
    let line = jsonl
        .lines()
        .find(|l| l.contains(&format!("\"name\":\"{name}\"")))?;
    let tail = line.split("\"value\":").nth(1)?;
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

#[test]
fn generate_writes_dataset_metrics() {
    let dir = TempDir::new("gen");
    generate(dir.path());
    let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("metrics.jsonl");
    let offered = metric_value(&jsonl, "faultsim.events_offered").expect("events_offered");
    let logged = metric_value(&jsonl, "faultsim.ces_logged").expect("ces_logged");
    assert!(offered > 0.0);
    assert!(logged <= offered, "can't log more CEs than were offered");
    assert!(metric_value(&jsonl, "faultsim.ecc.corrected").unwrap() > 0.0);
}

#[test]
fn analyze_exports_nonzero_parse_throughput() {
    let dir = TempDir::new("analyze");
    generate(dir.path());
    let metrics = dir.join("m.json");
    run(&[
        "analyze",
        dir.path().to_str().unwrap(),
        "--racks",
        "1",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    let jsonl = std::fs::read_to_string(&metrics).expect("metrics file");

    // Nonzero parse throughput: lines were parsed and time was recorded.
    let lines = metric_value(&jsonl, "parse.ce.lines_ok").expect("parse.ce.lines_ok");
    assert!(lines > 0.0, "no CE lines parsed");
    let timing = jsonl
        .lines()
        .find(|l| l.contains("parse.ce") && l.contains("\"kind\":\"timing\""))
        .expect("a timing for the ce parse stage");
    let sum = timing.split("\"sum\":").nth(1).expect("sum field");
    let ns: f64 = sum
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    assert!(ns > 0.0, "parse stage recorded zero elapsed time");

    // The analysis side also ran.
    assert!(metric_value(&jsonl, "coalesce.records_in").unwrap() > 0.0);
    assert!(metric_value(&jsonl, "coalesce.faults_out").unwrap() > 0.0);
}

#[test]
fn corrupt_lines_surface_in_skip_counters() {
    let dir = TempDir::new("corrupt");
    generate(dir.path());
    // Corrupt the CE log: inject lines no parser accepts.
    let ce = dir.join("ce.log");
    let mut text = std::fs::read_to_string(&ce).unwrap();
    for i in 0..5 {
        text.push_str(&format!("@@ corrupted line {i} @@\n"));
    }
    std::fs::write(&ce, text).unwrap();

    // Strict is the default, so quarantining requires opting in.
    let metrics = dir.join("m.json");
    run(&[
        "analyze",
        dir.path().to_str().unwrap(),
        "--racks",
        "1",
        "--lenient",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    let skipped = metric_value(&jsonl, "parse.ce.lines_skipped").expect("skip counter");
    assert_eq!(skipped, 5.0, "each injected corrupt line must be counted");
    let reason = metric_value(&jsonl, "ingest.quarantined.unknown-format")
        .expect("typed quarantine counter");
    assert_eq!(reason, 5.0, "injected lines classify as unknown-format");
}

#[test]
fn report_metrics_span_all_stages_and_are_deterministic() {
    let dir = TempDir::new("report");
    generate(dir.path());
    let mut exports = Vec::new();
    for name in ["m1.json", "m2.json"] {
        let metrics = dir.join(name);
        run(&[
            "report",
            dir.path().to_str().unwrap(),
            "--racks",
            "1",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        exports.push(std::fs::read_to_string(&metrics).unwrap());
    }

    // Acceptance: >= 12 distinct metrics spanning faultsim, parse (logs),
    // coalesce, and experiments.
    let names: Vec<&str> = exports[0]
        .lines()
        .filter_map(|l| l.split("\"name\":\"").nth(1)?.split('"').next())
        .collect();
    assert!(names.len() >= 12, "only {} metrics exported", names.len());
    for stage in ["faultsim.", "parse.", "coalesce.", "experiments."] {
        assert!(
            names.iter().any(|n| n.starts_with(stage)),
            "no {stage}* metric in export; got {names:?}"
        );
    }

    // Determinism: everything except wall-clock timings is identical
    // across two runs over the same directory.
    let strip = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.contains("\"kind\":\"timing\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&exports[0]),
        strip(&exports[1]),
        "non-timing metrics differ between identical runs"
    );
}

#[test]
fn stats_prints_throughput_and_rates() {
    let dir = TempDir::new("stats");
    generate(dir.path());
    let out = Command::new(bin())
        .args(["stats", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parse stages:"), "{text}");
    assert!(text.contains("throughput"), "{text}");
    assert!(text.contains("skip %"), "{text}");
    assert!(text.contains("kernel-buffer loss"), "{text}");
    assert!(text.contains("errors/fault"), "{text}");
}

#[test]
fn stats_without_metrics_file_prints_actionable_hint() {
    let dir = TempDir::new("statshint");
    generate(dir.path());
    std::fs::remove_file(dir.join("metrics.jsonl")).unwrap();
    let out = Command::new(bin())
        .args(["stats", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stats should still run without metrics"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("metrics.jsonl"), "{err}");
    assert!(
        err.contains("astra-mem generate"),
        "hint names the fix: {err}"
    );
    // The live-measured sections still render.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parse stages:"), "{text}");
}

#[test]
fn load_errors_distinguish_missing_from_corrupt() {
    let dir = TempDir::new("loaderr");
    generate(dir.path());

    // Required log deleted → "missing" plus a hint naming generate.
    std::fs::remove_file(dir.join("ce.log")).unwrap();
    let out = Command::new(bin())
        .args(["analyze", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing") && err.contains("ce.log"), "{err}");
    assert!(err.contains("hint:") && err.contains("generate"), "{err}");

    // Present but undecodable → the strict default refuses with a typed
    // quarantine report and points at fsck / --lenient.
    std::fs::write(dir.join("ce.log"), [0xFF, 0xFE, b'\n']).unwrap();
    let out = Command::new(bin())
        .args(["report", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("corrupt") && err.contains("ce.log"), "{err}");
    assert!(err.contains("bad-utf8"), "typed reason in report: {err}");
    assert!(
        err.contains("hint:") && err.contains("--lenient") && err.contains("fsck"),
        "{err}"
    );
}

#[test]
fn predict_reports_metrics_and_ground_truth_join() {
    let dir = TempDir::new("predict");
    generate(dir.path());
    let metrics = dir.join("m.json");
    let out = Command::new(bin())
        .args([
            "predict",
            dir.path().to_str().unwrap(),
            "--racks",
            "1",
            "--seed",
            "7",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "predict failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ground truth:"), "{text}");
    assert!(text.contains("precision"), "{text}");
    assert!(text.contains("fault-recall"), "{text}");
    assert!(text.contains("UE-recall"), "{text}");
    assert!(text.contains("proactive mitigation"), "{text}");

    // The engine's obs instrumentation made it into the export.
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    assert!(metric_value(&jsonl, "predict.records_in").expect("records_in") > 0.0);
    assert!(metric_value(&jsonl, "predict.ranks_tracked").expect("ranks_tracked") > 0.0);
    assert!(
        metric_value(&jsonl, "predict.alerts").expect("alerts") > 0.0,
        "the default predictors should alert on a 1-rack simulation"
    );
}

/// `"time.<path>" -> sum_ns` for every timing line in a JSONL export.
fn timing_sums(jsonl: &str) -> std::collections::BTreeMap<String, u64> {
    jsonl
        .lines()
        .filter(|l| l.contains("\"kind\":\"timing\""))
        .filter_map(|l| {
            let name = l.split("\"name\":\"").nth(1)?.split('"').next()?;
            let sum = l
                .split("\"sum\":")
                .nth(1)?
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .ok()?;
            Some((name.to_string(), sum))
        })
        .collect()
}

#[test]
fn analyze_trace_out_emits_nested_trace_matching_timings() {
    let dir = TempDir::new("trace");
    generate(dir.path());
    let trace = dir.join("trace.json");
    let metrics = dir.join("m.json");
    run(&[
        "analyze",
        dir.path().to_str().unwrap(),
        "--racks",
        "1",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let events = astra_obs::trace::parse_chrome_trace(&text).expect("valid Chrome trace JSON");
    assert!(!events.is_empty(), "trace recorded no events");

    // The span tree nests: shard work under the pipeline stages, parse
    // stages under the parse root.
    for path in [
        "pipeline.analyze",
        "pipeline.analyze/pipeline.consume",
        "pipeline.analyze/pipeline.consume/consume.shard",
        "pipeline.analyze/pipeline.coalesce",
    ] {
        assert!(
            events.iter().any(|e| e.path == path),
            "no event for {path}; have {:?}",
            events
                .iter()
                .map(|e| e.path.as_str())
                .collect::<std::collections::BTreeSet<_>>()
        );
    }
    assert!(
        events.iter().any(|e| e.path.starts_with("pipeline.parse/")),
        "parse stages must nest under pipeline.parse"
    );

    // The parse root carried its attached counters into the trace.
    assert!(
        events
            .iter()
            .any(|e| e.args.iter().any(|(k, v)| k == "lines_ok" && *v > 0)),
        "some span should carry a lines_ok counter arg"
    );

    // Acceptance: the flame table's total column IS the timing histogram
    // sum, to the nanosecond, for every traced path.
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    let sums = timing_sums(&jsonl);
    let rows = astra_obs::trace::flame_rows(&events);
    assert!(!rows.is_empty());
    for row in &rows {
        let sum = sums
            .get(&format!("time.{}", row.path))
            .unwrap_or_else(|| panic!("traced path {} has no timing metric", row.path));
        assert_eq!(
            row.total_ns, *sum,
            "flame total != timing sum for {}",
            row.path
        );
    }
}

#[test]
fn trace_subcommand_prints_flame_table() {
    let dir = TempDir::new("flame");
    generate(dir.path());
    let trace = dir.join("trace.json");
    run(&[
        "analyze",
        dir.path().to_str().unwrap(),
        "--racks",
        "1",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    let out = Command::new(bin())
        .args(["trace", trace.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "trace failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("span events"), "{text}");
    for column in ["path", "count", "total", "self", "mem peak", "mem net"] {
        assert!(text.contains(column), "missing column {column}: {text}");
    }
    assert!(
        text.contains("pipeline.analyze/pipeline.consume"),
        "nested paths render in the table: {text}"
    );

    // Pointing the renderer at a non-trace file is a clean error.
    let out = Command::new(bin())
        .args(["trace", dir.join("ce.log").to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "non-trace input must fail");
}

#[test]
fn stats_check_gates_on_thresholds() {
    let dir = TempDir::new("check");
    generate(dir.path());
    // The checked-in thresholds must pass on a clean dataset.
    let checked_in = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../thresholds.json");
    let out = Command::new(bin())
        .args([
            "stats",
            dir.path().to_str().unwrap(),
            "--racks",
            "1",
            "--check",
            checked_in.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "checked-in thresholds violated:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("threshold check passed"), "{text}");

    // An injected breach flips the exit code and names the rule.
    let tight = dir.join("tight.json");
    std::fs::write(
        &tight,
        "{\"rule\":\"counter_max\",\"name\":\"parse.ce.lines_ok\",\"max\":0}\n",
    )
    .unwrap();
    let out = Command::new(bin())
        .args([
            "stats",
            dir.path().to_str().unwrap(),
            "--racks",
            "1",
            "--check",
            tight.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        !out.status.success(),
        "breached threshold must exit nonzero"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("counter_max[parse.ce.lines_ok]"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("exceeded"), "{err}");

    // A malformed threshold file is a hard error, not a silent pass.
    let broken = dir.join("broken.json");
    std::fs::write(&broken, "{\"rule\":\"nonsense\",\"max\":1}\n").unwrap();
    let out = Command::new(bin())
        .args([
            "stats",
            dir.path().to_str().unwrap(),
            "--racks",
            "1",
            "--check",
            broken.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown rule"),
        "unknown rules are hard errors"
    );
}

#[test]
fn stats_stage_breakdown_includes_percentiles() {
    let dir = TempDir::new("pctl");
    generate(dir.path());
    let out = Command::new(bin())
        .args(["stats", dir.path().to_str().unwrap(), "--racks", "1"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stage breakdown:"), "{text}");
    for column in ["p50", "p95", "p99"] {
        assert!(text.contains(column), "missing {column}: {text}");
    }
}

#[test]
fn bad_arguments_are_rejected() {
    for args in [
        &["generate", "--racks", "0", "--out", "/tmp/x"][..],
        &["analyze", "/tmp/a", "/tmp/b"][..],
    ] {
        let out = Command::new(bin()).args(args).output().expect("spawn");
        assert!(!out.status.success(), "astra-mem {args:?} should fail");
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros — measured with plain `std::time::Instant`.
//! No statistical analysis, HTML reports, or baselines: each benchmark
//! prints its median, minimum, and throughput to stdout.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Batch sizing hints for [`Bencher::iter_batched`]. The stand-in runs
/// one input per measured call regardless, so these are accepted and
/// ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Declared work per iteration; turns timings into rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark outside a group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named collection of benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            remaining: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        samples.sort_unstable();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let min = samples.first().copied().unwrap_or(Duration::ZERO);
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if median > Duration::ZERO => {
                format!(
                    "  {:.1} MiB/s",
                    b as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {median:?}  min {min:?}  ({} samples){rate}",
            self.name,
            samples.len()
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Runs and times the benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    remaining: usize,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call, then timed samples.
        let _ = routine();
        for _ in 0..self.remaining {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _ = routine(setup());
        for _ in 0..self.remaining {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("batched");
        group.sample_size(2);
        let mut setups = 0u32;
        group.bench_function("setup", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 3);
    }
}

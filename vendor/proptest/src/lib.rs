//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the proptest API the workspace's test
//! suites use: the [`Strategy`] trait with `prop_map`, integer-range and
//! tuple strategies, regex-literal string strategies, `collection::vec`,
//! `option::of`, the `proptest!` macro (with optional
//! `#![proptest_config(...)]` header), and the `prop_assert*` macros.
//!
//! Generation is plain random sampling from a deterministic splitmix64
//! stream seeded by the test name — no shrinking, no failure persistence.
//! That loses proptest's minimal-counterexample reporting but keeps the
//! properties themselves exercised over a deterministic, reproducible
//! sample of the input space.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner {
    //! Deterministic RNG for property generation.

    /// SplitMix64 step.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The generator handed to strategies. Deterministic per test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed a stream from a test's name so every property test draws
        /// an independent, reproducible sample.
        pub fn for_test(name: &str) -> TestRng {
            let mut state = 0x243F_6A88_85A3_08D3;
            for b in name.as_bytes() {
                state ^= u64::from(*b);
                splitmix64(&mut state);
            }
            TestRng { state }
        }

        /// Next raw 64-bit output.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift; bias is irrelevant at test-sampling scale.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration: how many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` imports.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = ($strategy).generate(&mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

//! The [`Strategy`] trait and the built-in strategies the workspace uses:
//! integer ranges, tuples, `prop_map`, and regex-literal strings.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    // Work in u64 offset space to cover signed ranges.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = rng.below(span);
                    ((self.start as i128) + offset as i128) as $ty
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// String literals act as generators for the regex subset the suites
/// use: literal characters, `[...]` classes with ranges, `{n}` / `{m,n}`
/// repetition, and `\PC` for an arbitrary printable character.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    AnyPrintable,
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, u32, u32)> {
    let mut atoms: Vec<(Atom, u32, u32)> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    // `\PC` / `\pC`: consume the class letter.
                    let _ = chars.next();
                    Atom::AnyPrintable
                }
                Some(escaped) => Atom::Literal(escaped),
                None => break,
            },
            '[' => {
                let mut members: Vec<char> = Vec::new();
                for m in chars.by_ref() {
                    if m == ']' {
                        break;
                    }
                    members.push(m);
                }
                let mut ranges = Vec::new();
                let mut i = 0;
                while i < members.len() {
                    if i + 2 < members.len() && members[i + 1] == '-' {
                        ranges.push((members[i], members[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((members[i], members[i]));
                        i += 1;
                    }
                }
                Atom::Class(ranges)
            }
            other => Atom::Literal(other),
        };
        // Optional {n} or {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for q in chars.by_ref() {
                if q == '}' {
                    break;
                }
                spec.push(q);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(0),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse_pattern(pattern) {
        let count = min + rng.below(u64::from(max - min + 1)) as u32;
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                    let span = (hi as u32).saturating_sub(lo as u32) + 1;
                    let picked = lo as u32 + rng.below(u64::from(span)) as u32;
                    out.push(char::from_u32(picked).unwrap_or(lo));
                }
                Atom::AnyPrintable => {
                    // Mostly printable ASCII with occasional non-ASCII
                    // printables, so parsers see multi-byte UTF-8 too.
                    let c = if rng.below(8) == 0 {
                        const EXOTIC: &[char] = &['é', 'Ω', 'λ', '中', '🦀', 'ß', '±'];
                        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                    } else {
                        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
                    };
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (5i64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let u = (0u8..16).generate(&mut rng);
            assert!(u < 16);
        }
    }

    #[test]
    fn pattern_fixed_parts() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..100 {
            let s = "2019-[0-9]{2}-[0-9]{2}T[0-9]{2}:[0-9]{2}:00".generate(&mut rng);
            assert_eq!(s.len(), "2019-00-00T00:00:00".len());
            assert!(s.starts_with("2019-"));
            assert!(s.ends_with(":00"));
        }
    }

    #[test]
    fn pattern_bounded_repetition() {
        let mut rng = TestRng::for_test("rep");
        for _ in 0..200 {
            let s = "node[0-9]{1,6}".generate(&mut rng);
            assert!(s.starts_with("node"));
            let digits = &s[4..];
            assert!((1..=6).contains(&digits.len()));
            assert!(digits.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_class_is_printable() {
        let mut rng = TestRng::for_test("printable");
        for _ in 0..200 {
            let s = "\\PC{0,120}".generate(&mut rng);
            assert!(s.chars().count() <= 120);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test("map");
        let strat = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }
}
